"""Exceptions raised by the :mod:`repro.server` serving tier.

The tier keeps the facade's discipline: every failure mode a client can
hit maps to a *typed* error with an HTTP status, so load shedding and
crashes are observable protocol outcomes rather than hung connections or
untyped 500s.  The lower layers' exceptions (``SessionError``,
``ExpressionError``) cross the wire by class name in the JSON error
body; the classes here add only what belongs to the *server's* contract
— admission, budget leasing, worker lifecycle.
"""

from __future__ import annotations

__all__ = [
    "BadRequestError",
    "BudgetExhaustedError",
    "RequestTimeoutError",
    "ServerClosedError",
    "ServerError",
    "ServerOverloadedError",
    "WorkerCrashedError",
]


class ServerError(Exception):
    """A violation of the serving tier's contract."""

    #: HTTP status the front maps this class to.
    status = 500


class BadRequestError(ServerError):
    """The request body or parameters are malformed (HTTP 400)."""

    status = 400


class ServerOverloadedError(ServerError):
    """Admission control rejected the request: the queue is full (HTTP 503)."""

    status = 503


class BudgetExhaustedError(ServerOverloadedError):
    """The shared memory-budget pool could not grant the lease in time (HTTP 503)."""

    status = 503


class WorkerCrashedError(ServerError):
    """A worker process died while serving the request (HTTP 500)."""

    status = 500


class RequestTimeoutError(ServerError):
    """The worker did not answer an in-flight request id in time (HTTP 504).

    The multiplexed pipe stays healthy: the front drops the pending
    future (a late response for that id is discarded on arrival) and the
    request's budget lease is released — the worker may still be
    computing, but nothing upstream waits on it.
    """

    status = 504


class ServerClosedError(ServerError):
    """The server (or its worker pool) was stopped; no further requests serve."""

    status = 503
