"""Worker processes: warm :class:`~repro.api.Session` pools behind a pipe.

Each worker is one OS process (forked where available, a thread
otherwise) holding warm sessions over the server's relations.  The front
talks to it over a duplex :func:`multiprocessing.Pipe` with one plain
dict per message; a worker serves one request at a time, so the pipe
doubles as its queue and the pool provides the fan-out.

Warmth is the point.  A worker parses each distinct query text once
(expression cache), prepares it once per session (the session's
registry pins the plan and its forked probe pools), and keeps a small
LRU of *sessions* keyed by the per-request ``(budget, workers)``
override pair — so "the same query at the default budget" and "the same
query squeezed to 64 rows" each hit a pinned plan in the steady state.
That session cache is what closes PR 4's fixed-at-construction budget
follow-up at the serving tier: the ``BackendConfig`` stays immutable,
and per-request budgets choose *which* warm config serves.

Observability: every session of worker *i* shares one
:class:`~repro.obs.events.EventLog` mirrored to ``worker-i.jsonl`` when
the server configured an events directory (fork children never share a
file handle — each ``emit`` opens append-mode, and the PR 8 lock fix
keeps lines whole and in ``seq`` order), and one worker-scope
:class:`~repro.obs.metrics.MetricsRegistry` whose collected snapshot the
front merges into ``/metrics`` scrapes.
"""

from __future__ import annotations

import os
import threading
import traceback
from collections import OrderedDict
from time import perf_counter
from typing import Any, Dict, Mapping, Optional, Tuple

from ..algebra.relation import Relation
from ..api.config import BackendConfig
from ..api.session import Session
from ..obs.config import Observer, ObserveConfig
from .errors import ServerClosedError, ServerError, WorkerCrashedError

__all__ = ["Worker", "WorkerPool", "worker_main"]

#: How many distinct (budget, workers) session configs one worker keeps
#: warm; beyond this the least-recently-used session is closed (its pools
#: and pinned plans with it) exactly like the engine's pool LRU.
MAX_SESSIONS_PER_WORKER = 4


class _WorkerRuntime:
    """The in-child request loop state: session cache + expression cache."""

    def __init__(
        self,
        relations: Mapping[str, Relation],
        base_config: BackendConfig,
        index: int,
        events_path: Optional[str],
        max_sessions: int = MAX_SESSIONS_PER_WORKER,
    ):
        self._relations = dict(relations)
        self._base_config = base_config
        self.index = index
        self._max_sessions = max(1, max_sessions)
        # One observer for every session this worker opens: the event log
        # (JSONL-mirrored per worker) and metrics registry aggregate the
        # worker's whole traffic, while tracers are minted per execution.
        self._observer = Observer(
            ObserveConfig(
                trace=_observe_trace(base_config),
                events=events_path is not None,
                events_path=events_path,
            )
        )
        self._sessions: "OrderedDict[Tuple[Optional[int], int], Session]" = (
            OrderedDict()
        )
        self._expressions: Dict[str, Any] = {}

    def _session_key(
        self, budget: Optional[int], workers: Optional[int]
    ) -> Tuple[Optional[int], int]:
        base_budget = self._base_config.budget
        base_rows = base_budget.rows if base_budget is not None else None
        rows = budget if budget is not None else base_rows
        return (rows, workers if workers is not None else self._base_config.workers)

    def _session_for(self, budget: Optional[int], workers: Optional[int]) -> Session:
        key = self._session_key(budget, workers)
        session = self._sessions.get(key)
        if session is not None:
            self._sessions.move_to_end(key)
            return session
        config = self._base_config.override(
            budget=key[0], workers=key[1], observe=self._observer
        )
        session = Session(self._relations, config)
        self._sessions[key] = session
        while len(self._sessions) > self._max_sessions:
            _stale_key, stale = self._sessions.popitem(last=False)
            stale.close()
        return session

    def _expression_for(self, session: Session, text: str):
        expression = self._expressions.get(text)
        if expression is None:
            expression = session._parse(text)
            self._expressions[text] = expression
        return expression

    def handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one request dict and return the response dict."""
        op = message.get("op")
        try:
            if op == "query":
                return self._handle_query(message)
            if op == "metrics":
                return {"ok": True, "collected": self._collect_metrics()}
            if op == "stats":
                return {"ok": True, "stats": self._stats()}
            if op == "ping":
                return {"ok": True, "pid": os.getpid(), "worker": self.index}
            raise ServerError(f"unknown worker op {op!r}")
        except Exception as error:  # every failure crosses the pipe typed
            return {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
                "worker": self.index,
                "detail": traceback.format_exc(limit=3),
            }

    def _handle_query(self, message: Dict[str, Any]) -> Dict[str, Any]:
        start = perf_counter()
        session = self._session_for(message.get("budget"), message.get("workers"))
        expression = self._expression_for(session, message["query"])
        prepared = session.prepare(expression, backend=message.get("backend"))
        result = prepared.execute()
        elapsed = perf_counter() - start
        trace = result.trace
        counters = trace.counters or {}
        registry = self._observer.metrics
        if registry is not None:
            # The never-fires tripwire, surfaced per worker so a /metrics
            # scrape can assert it stayed zero across the whole fleet.
            registry.counter(
                "repro_spill_overflows_total",
                help="budget overflows the spill machinery failed to absorb",
            ).inc(counters.get("spill_overflows", 0))
        response: Dict[str, Any] = {
            "ok": True,
            "worker": self.index,
            "backend": result.backend,
            "columns": list(result.scheme.names),
            "rowcount": len(result),
            "elapsed_ms": elapsed * 1000.0,
            "budget": self._session_key(
                message.get("budget"), message.get("workers")
            )[0],
            "replans": trace.replans,
            "serial_fallbacks": trace.serial_fallbacks,
            "spilled_rows": counters.get("spill_rows", 0),
            "spill_overflows": counters.get("spill_overflows", 0),
            "peak_memory_rows": trace.peak_memory_rows,
            "spans": len(trace.spans or ()),
        }
        if not message.get("count_only"):
            response["rows"] = [list(row) for row in result.relation.sorted_rows()]
        return response

    def _collect_metrics(self) -> Dict[str, Dict[str, Any]]:
        registry = self._observer.metrics
        return registry.collect() if registry is not None else {}

    def _stats(self) -> Dict[str, Any]:
        sessions = {}
        for key, session in self._sessions.items():
            sessions[f"budget={key[0]} workers={key[1]}"] = session.stats()
        events = self._observer.events
        return {
            "pid": os.getpid(),
            "worker": self.index,
            "sessions": sessions,
            "expressions_cached": len(self._expressions),
            "event_counts": events.counts() if events is not None else {},
        }

    def close(self) -> None:
        """Close every warm session (pools, temp dirs) before exit."""
        while self._sessions:
            _key, session = self._sessions.popitem(last=False)
            session.close()


def _observe_trace(config: BackendConfig) -> bool:
    observe = config.observe
    return bool(observe is not None and getattr(observe, "trace", False))


def worker_main(
    conn,
    relations: Mapping[str, Relation],
    base_config: BackendConfig,
    index: int,
    events_path: Optional[str] = None,
    max_sessions: int = MAX_SESSIONS_PER_WORKER,
) -> None:
    """The worker loop: recv one request dict, send one response dict.

    Runs until a ``shutdown`` message or the parent's end of the pipe
    closes; either way every warm session is closed on the way out so no
    probe pools or spill directories outlive the worker.
    """
    runtime = _WorkerRuntime(
        relations, base_config, index, events_path, max_sessions
    )
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(message, dict) or message.get("op") == "shutdown":
                break
            try:
                conn.send(runtime.handle(message))
            except (BrokenPipeError, OSError):
                break
    finally:
        runtime.close()
        try:
            conn.close()
        except OSError:
            pass


class Worker:
    """The parent-side handle of one worker: pipe + process (or thread).

    ``request`` is synchronous and serialised per worker (one request in
    flight per process); the async front calls it from executor threads.
    A dead worker raises :class:`WorkerCrashedError` so the pool can
    respawn and retry.
    """

    def __init__(
        self,
        index: int,
        relations: Mapping[str, Relation],
        base_config: BackendConfig,
        backend: str,
        events_path: Optional[str] = None,
        max_sessions: int = MAX_SESSIONS_PER_WORKER,
    ):
        self.index = index
        self.backend = backend
        self._lock = threading.Lock()
        self._closed = False
        import multiprocessing

        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        self._conn = parent_conn
        args = (child_conn, relations, base_config, index, events_path, max_sessions)
        if backend == "fork":
            context = multiprocessing.get_context("fork")
            self._process = context.Process(
                target=worker_main, args=args, daemon=True
            )
            self._process.start()
            child_conn.close()  # the child's end lives in the child now
            self._thread = None
        else:
            self._process = None
            self._thread = threading.Thread(target=worker_main, args=args, daemon=True)
            self._thread.start()

    def alive(self) -> bool:
        """Whether the worker can still take requests."""
        if self._closed:
            return False
        if self._process is not None:
            return self._process.is_alive()
        return self._thread is not None and self._thread.is_alive()

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and block for its response (serialised per worker)."""
        with self._lock:
            if self._closed:
                raise ServerClosedError(f"worker {self.index} is closed")
            try:
                self._conn.send(message)
                return self._conn.recv()
            except (EOFError, BrokenPipeError, OSError) as error:
                raise WorkerCrashedError(
                    f"worker {self.index} died mid-request ({type(error).__name__})"
                ) from error

    def stop(self, timeout: float = 5.0) -> None:
        """Shut the worker down: shutdown message, join, then terminate."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send({"op": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        if self._process is not None:
            self._process.join(timeout)
            if self._process.is_alive():  # pragma: no cover - stuck worker
                self._process.terminate()
                self._process.join(timeout)
        elif self._thread is not None:
            self._thread.join(timeout)
        try:
            self._conn.close()
        except OSError:
            pass

    def kill(self) -> None:
        """Hard-kill the worker process (crash-recovery tests only)."""
        if self._process is not None and self._process.is_alive():
            self._process.terminate()
            self._process.join(2.0)


class WorkerPool:
    """A fixed-size pool of workers with round-robin dispatch and respawn.

    Dispatch prefers an idle worker (falling back to strict round-robin
    when all are busy, which queues on that worker's pipe lock).  A
    request that finds its worker dead respawns it once and retries —
    queries are pure reads, so the retry is safe — counting the rebuild
    in ``worker_restarts`` (the serving-tier analogue of the probe
    pool's rebuild-or-loud-serial contract).
    """

    def __init__(
        self,
        relations: Mapping[str, Relation],
        base_config: BackendConfig,
        size: int = 2,
        worker_backend: Optional[str] = None,
        events_dir: Optional[str] = None,
        max_sessions: int = MAX_SESSIONS_PER_WORKER,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if worker_backend is None:
            worker_backend = "fork" if hasattr(os, "fork") else "thread"
        if worker_backend not in ("fork", "thread"):
            raise ValueError(
                f"worker_backend must be 'fork' or 'thread', got {worker_backend!r}"
            )
        self._relations = dict(relations)
        self._base_config = base_config
        self._events_dir = events_dir
        self._max_sessions = max_sessions
        self.backend = worker_backend
        self.size = size
        self._lock = threading.Lock()
        self._closed = False
        self._next = 0
        self._busy = [False] * size
        self.worker_restarts = 0
        self._workers = [self._spawn(index) for index in range(size)]

    def _events_path(self, index: int) -> Optional[str]:
        if self._events_dir is None:
            return None
        os.makedirs(self._events_dir, exist_ok=True)
        return os.path.join(self._events_dir, f"worker-{index}.jsonl")

    def _spawn(self, index: int) -> Worker:
        return Worker(
            index,
            self._relations,
            self._base_config,
            self.backend,
            events_path=self._events_path(index),
            max_sessions=self._max_sessions,
        )

    def _pick(self) -> int:
        with self._lock:
            if self._closed:
                raise ServerClosedError("the worker pool is closed")
            for offset in range(self.size):
                index = (self._next + offset) % self.size
                if not self._busy[index]:
                    self._next = (index + 1) % self.size
                    self._busy[index] = True
                    return index
            index = self._next
            self._next = (index + 1) % self.size
            self._busy[index] = True
            return index

    def _ensure_alive(self, index: int) -> Worker:
        with self._lock:
            worker = self._workers[index]
            if worker.alive():
                return worker
            if self._closed:
                raise ServerClosedError("the worker pool is closed")
            self.worker_restarts += 1
            worker = self._spawn(index)
            self._workers[index] = worker
            return worker

    def dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send ``message`` to one worker; respawn and retry once on a crash."""
        index = self._pick()
        try:
            worker = self._ensure_alive(index)
            try:
                return worker.request(message)
            except WorkerCrashedError:
                worker = self._ensure_alive(index)
                return worker.request(message)
        finally:
            with self._lock:
                self._busy[index] = False

    def broadcast(self, message: Dict[str, Any]) -> list:
        """Send ``message`` to every live worker and collect the responses."""
        responses = []
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            if not worker.alive():
                continue
            try:
                responses.append(worker.request(dict(message)))
            except (WorkerCrashedError, ServerClosedError):
                continue
        return responses

    def collect_metrics(self) -> list:
        """Every worker's ``registry.collect()`` snapshot (for ``/metrics``)."""
        return [
            response["collected"]
            for response in self.broadcast({"op": "metrics"})
            if response.get("ok")
        ]

    def stats(self) -> Dict[str, Any]:
        """Pool shape plus each worker's session/expression/event stats."""
        return {
            "size": self.size,
            "backend": self.backend,
            "worker_restarts": self.worker_restarts,
            "workers": [
                response["stats"]
                for response in self.broadcast({"op": "stats"})
                if response.get("ok")
            ],
        }

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        for worker in workers:
            worker.stop()
