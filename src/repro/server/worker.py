"""Worker processes: warm :class:`~repro.api.Session` pools behind a pipe.

Each worker is one OS process (forked where available, a thread
otherwise) holding warm sessions over the server's relations.  The front
talks to it over a duplex :func:`multiprocessing.Pipe` carrying **tagged
frames**: every request dict travels with a monotonic ``id`` and every
response echoes it, so one worker serves *many* requests concurrently —
a slow budget-64 spilling execute no longer head-of-line-blocks the fast
cached-session queries sharing its pipe.  The moving parts:

* **In the worker** a dispatcher loop receives frames and hands ``query``
  frames to a small thread pool (``concurrency`` threads); control
  frames (``ping`` / ``metrics`` / ``stats`` / ``mutate`` / ``shutdown``)
  are answered inline on the loop so telemetry and mutation stay prompt
  under query load.  Responses are sent back under one lock, so frames
  never interleave on the pipe.
* **In the front** each :class:`Worker` runs a receiver thread that
  resolves a pending-futures map keyed by request id.
  :meth:`Worker.request` registers a future, sends the tagged frame, and
  blocks on its own future only — callers on other threads proceed
  independently.  When the pipe dies, **every** in-flight id fails with
  the typed :class:`WorkerCrashedError` (or :class:`ServerClosedError`
  after :meth:`Worker.stop`), which is what lets the pool respawn and
  retry each read-only request safely.
* A request that outlives ``timeout`` raises the typed
  :class:`RequestTimeoutError` and *abandons* its id: the late response
  is dropped on arrival, the pipe keeps serving.

Warmth is the point.  A worker parses each distinct query text once
(expression cache), prepares it once per session (the session's
registry pins the plan and its forked probe pools), and keeps a small
LRU of *sessions* keyed by the per-request ``(budget, workers)``
override pair — so "the same query at the default budget" and "the same
query squeezed to 64 rows" each hit a pinned plan in the steady state.
That session cache is what closes PR 4's fixed-at-construction budget
follow-up at the serving tier: the ``BackendConfig`` stays immutable,
and per-request budgets choose *which* warm config serves.

Mutation rides the same frames: a ``mutate`` frame installs a fresh
relation under a name via every cached session's
:meth:`~repro.api.Session.set_relation` (and in the worker's binding map
for sessions warmed later), so the serving tier's result-cache
invalidation contract (see :mod:`repro.server.cache`) has an
authoritative end-to-end mutation path.

Observability: every session of worker *i* shares one
:class:`~repro.obs.events.EventLog` mirrored to ``worker-i.jsonl`` when
the server configured an events directory (fork children never share a
file handle — each ``emit`` opens append-mode, and the PR 8 lock fix
keeps lines whole and in ``seq`` order), and one worker-scope
:class:`~repro.obs.metrics.MetricsRegistry` whose collected snapshot the
front merges into ``/metrics`` scrapes.
"""

from __future__ import annotations

import itertools
import os
import threading
import traceback
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from time import perf_counter
from typing import Any, Dict, Mapping, Optional, Tuple

from ..algebra.relation import Relation
from ..api.config import BackendConfig
from ..api.session import Session
from ..obs.config import Observer, ObserveConfig
from .errors import (
    RequestTimeoutError,
    ServerClosedError,
    ServerError,
    WorkerCrashedError,
)

__all__ = ["Worker", "WorkerPool", "worker_main"]

#: How many distinct (budget, workers) session configs one worker keeps
#: warm; beyond this the least-recently-used session is closed (its pools
#: and pinned plans with it) exactly like the engine's pool LRU.
MAX_SESSIONS_PER_WORKER = 4

#: Concurrent query frames one worker serves at a time (its multiplexing
#: width).  ``1`` restores the pre-multiplex serialised behaviour — the
#: head-of-line benchmark leg uses exactly that as its baseline.
DEFAULT_WORKER_CONCURRENCY = 4


class _WorkerRuntime:
    """The in-child request state: session cache + expression cache.

    Query frames are served from several dispatcher threads at once, so
    the two caches are guarded by one runtime lock; the sessions
    themselves are thread-safe (the facade's concurrent-serving
    contract) and executes run outside the lock.
    """

    def __init__(
        self,
        relations: Mapping[str, Relation],
        base_config: BackendConfig,
        index: int,
        events_path: Optional[str],
        max_sessions: int = MAX_SESSIONS_PER_WORKER,
    ):
        self._relations = dict(relations)
        self._base_config = base_config
        self.index = index
        self._max_sessions = max(1, max_sessions)
        self._lock = threading.Lock()
        # One observer for every session this worker opens: the event log
        # (JSONL-mirrored per worker) and metrics registry aggregate the
        # worker's whole traffic, while tracers are minted per execution.
        self._observer = Observer(
            ObserveConfig(
                trace=_observe_trace(base_config),
                events=events_path is not None,
                events_path=events_path,
            )
        )
        self._sessions: "OrderedDict[Tuple[Optional[int], int], Session]" = (
            OrderedDict()
        )
        self._expressions: Dict[str, Any] = {}

    def _session_key(
        self, budget: Optional[int], workers: Optional[int]
    ) -> Tuple[Optional[int], int]:
        base_budget = self._base_config.budget
        base_rows = base_budget.rows if base_budget is not None else None
        rows = budget if budget is not None else base_rows
        return (rows, workers if workers is not None else self._base_config.workers)

    def _session_for(self, budget: Optional[int], workers: Optional[int]) -> Session:
        key = self._session_key(budget, workers)
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                return session
            config = self._base_config.override(
                budget=key[0], workers=key[1], observe=self._observer
            )
            session = Session(self._relations, config)
            self._sessions[key] = session
            stale_sessions = []
            while len(self._sessions) > self._max_sessions:
                _stale_key, stale = self._sessions.popitem(last=False)
                stale_sessions.append(stale)
        for stale in stale_sessions:
            stale.close()
        return session

    def _expression_for(self, session: Session, text: str):
        with self._lock:
            expression = self._expressions.get(text)
        if expression is None:
            expression = session._parse(text)
            with self._lock:
                self._expressions[text] = expression
        return expression

    def handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one request dict and return the response dict."""
        op = message.get("op")
        try:
            if op == "query":
                return self._handle_query(message)
            if op == "mutate":
                return self._handle_mutate(message)
            if op == "metrics":
                return {"ok": True, "collected": self._collect_metrics()}
            if op == "stats":
                return {"ok": True, "stats": self._stats()}
            if op == "ping":
                return {"ok": True, "pid": os.getpid(), "worker": self.index}
            raise ServerError(f"unknown worker op {op!r}")
        except Exception as error:  # every failure crosses the pipe typed
            return {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
                "worker": self.index,
                "detail": traceback.format_exc(limit=3),
            }

    def _handle_query(self, message: Dict[str, Any]) -> Dict[str, Any]:
        start = perf_counter()
        session = self._session_for(message.get("budget"), message.get("workers"))
        expression = self._expression_for(session, message["query"])
        prepared = session.prepare(expression, backend=message.get("backend"))
        result = prepared.execute()
        elapsed = perf_counter() - start
        trace = result.trace
        counters = trace.counters or {}
        registry = self._observer.metrics
        if registry is not None:
            # The never-fires tripwire, surfaced per worker so a /metrics
            # scrape can assert it stayed zero across the whole fleet.
            registry.counter(
                "repro_spill_overflows_total",
                help="budget overflows the spill machinery failed to absorb",
            ).inc(counters.get("spill_overflows", 0))
        response: Dict[str, Any] = {
            "ok": True,
            "worker": self.index,
            "backend": result.backend,
            "columns": list(result.scheme.names),
            "relations": sorted(expression.operand_schemes()),
            "rowcount": len(result),
            "elapsed_ms": elapsed * 1000.0,
            "budget": self._session_key(
                message.get("budget"), message.get("workers")
            )[0],
            "replans": trace.replans,
            "serial_fallbacks": trace.serial_fallbacks,
            "spilled_rows": counters.get("spill_rows", 0),
            "spill_overflows": counters.get("spill_overflows", 0),
            "peak_memory_rows": trace.peak_memory_rows,
            "spans": len(trace.spans or ()),
        }
        if not message.get("count_only"):
            response["rows"] = [list(row) for row in result.relation.sorted_rows()]
        return response

    def _handle_mutate(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Install a fresh relation under a name, in every warm session.

        The new binding applies to executes that start after this frame
        is answered; executes already in flight bound the previous
        relation atomically (the session snapshots bindings under its
        lock), so concurrent traffic sees *either* generation, never a
        mix.
        """
        name = message["name"]
        relation = message["relation"]
        if not isinstance(relation, Relation):  # pragma: no cover - front checks
            raise ServerError("mutate frames must carry a Relation")
        with self._lock:
            self._relations[name] = relation
            sessions = list(self._sessions.values())
        for session in sessions:
            session.set_relation(name, relation)
        return {
            "ok": True,
            "worker": self.index,
            "name": name,
            "rowcount": len(relation),
            "sessions_invalidated": len(sessions),
        }

    def _collect_metrics(self) -> Dict[str, Dict[str, Any]]:
        registry = self._observer.metrics
        return registry.collect() if registry is not None else {}

    def _stats(self) -> Dict[str, Any]:
        with self._lock:
            items = list(self._sessions.items())
            expressions_cached = len(self._expressions)
        sessions = {}
        for key, session in items:
            sessions[f"budget={key[0]} workers={key[1]}"] = session.stats()
        events = self._observer.events
        return {
            "pid": os.getpid(),
            "worker": self.index,
            "sessions": sessions,
            "expressions_cached": expressions_cached,
            "event_counts": events.counts() if events is not None else {},
        }

    def close(self) -> None:
        """Close every warm session (pools, temp dirs) before exit."""
        while True:
            with self._lock:
                if not self._sessions:
                    break
                _key, session = self._sessions.popitem(last=False)
            session.close()


def _observe_trace(config: BackendConfig) -> bool:
    observe = config.observe
    return bool(observe is not None and getattr(observe, "trace", False))


def worker_main(
    conn,
    relations: Mapping[str, Relation],
    base_config: BackendConfig,
    index: int,
    events_path: Optional[str] = None,
    max_sessions: int = MAX_SESSIONS_PER_WORKER,
    concurrency: int = DEFAULT_WORKER_CONCURRENCY,
) -> None:
    """The worker loop: recv tagged request frames, send tagged responses.

    ``query`` frames fan out onto ``concurrency`` dispatcher threads so a
    slow execute never blocks the pipe; everything else (telemetry,
    mutation, shutdown) is handled inline in frame order.  Runs until a
    ``shutdown`` message or the parent's end of the pipe closes; either
    way every warm session is closed on the way out so no probe pools or
    spill directories outlive the worker.
    """
    runtime = _WorkerRuntime(
        relations, base_config, index, events_path, max_sessions
    )
    send_lock = threading.Lock()
    executor = ThreadPoolExecutor(
        max_workers=max(1, concurrency),
        thread_name_prefix=f"repro-worker-{index}",
    )

    def respond(response: Dict[str, Any], request_id: Optional[int]) -> None:
        if request_id is not None:
            response["id"] = request_id
        with send_lock:
            try:
                conn.send(response)
            except (BrokenPipeError, OSError, ValueError):
                pass  # the front went away; nothing to answer

    def serve(message: Dict[str, Any], request_id: Optional[int]) -> None:
        respond(runtime.handle(message), request_id)

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(message, dict) or message.get("op") == "shutdown":
                break
            request_id = message.get("id")
            if message.get("op") == "query" and request_id is not None:
                executor.submit(serve, message, request_id)
            else:
                serve(message, request_id)
    finally:
        # Don't wait for stuck executes: close the sessions (in-flight
        # threads get the typed SessionClosedError and their responses
        # are dropped with the pipe) so pools and spill dirs never
        # outlive the worker.
        executor.shutdown(wait=False)
        runtime.close()
        try:
            conn.close()
        except OSError:
            pass


class Worker:
    """The parent-side handle of one worker: pipe + process (or thread).

    :meth:`request` is safe to call from many threads at once — each
    call sends one tagged frame and blocks on its own pending future
    while the shared receiver thread demultiplexes responses by id.  A
    dead worker fails **all** of its in-flight ids with
    :class:`WorkerCrashedError` so the pool can respawn and retry each.
    """

    def __init__(
        self,
        index: int,
        relations: Mapping[str, Relation],
        base_config: BackendConfig,
        backend: str,
        events_path: Optional[str] = None,
        max_sessions: int = MAX_SESSIONS_PER_WORKER,
        concurrency: int = DEFAULT_WORKER_CONCURRENCY,
    ):
        self.index = index
        self.backend = backend
        self.concurrency = max(1, concurrency)
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[int, Future] = {}
        self._ids = itertools.count(1)
        self._closed = False
        #: Set (under the pending lock) when the receiver loop exits: the
        #: typed error every subsequent request fails with immediately.
        #: Checking it under the same lock that registers futures closes
        #: the race where ``process.is_alive()`` lags the pipe's death —
        #: a request registered after the receiver exits would otherwise
        #: wait on a future nothing will ever resolve.
        self._dead_error: Optional[ServerError] = None
        import multiprocessing

        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        self._conn = parent_conn
        args = (
            child_conn,
            relations,
            base_config,
            index,
            events_path,
            max_sessions,
            self.concurrency,
        )
        if backend == "fork":
            context = multiprocessing.get_context("fork")
            self._process = context.Process(
                target=worker_main, args=args, daemon=True
            )
            self._process.start()
            child_conn.close()  # the child's end lives in the child now
            self._thread = None
        else:
            self._process = None
            self._thread = threading.Thread(target=worker_main, args=args, daemon=True)
            self._thread.start()
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name=f"repro-worker-{index}-recv",
            daemon=True,
        )
        self._receiver.start()

    # -- the demultiplexer ---------------------------------------------

    def _receive_loop(self) -> None:
        while True:
            try:
                response = self._conn.recv()
            except (EOFError, OSError, ValueError):
                break
            request_id = (
                response.pop("id", None) if isinstance(response, dict) else None
            )
            with self._pending_lock:
                future = self._pending.pop(request_id, None)
            if future is not None:
                # A timed-out caller already abandoned its future
                # (set_exception); set_result would raise — skip done ones.
                if not future.done():
                    future.set_result(response)
        if self._closed:
            self._fail_pending(
                ServerClosedError(f"worker {self.index} is closed")
            )
        else:
            self._fail_pending(
                WorkerCrashedError(
                    f"worker {self.index} died with requests in flight"
                )
            )

    def _fail_pending(self, error: ServerError) -> None:
        """Fail every in-flight id with one typed error (crash contract)."""
        with self._pending_lock:
            self._dead_error = error
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(error)

    @property
    def inflight(self) -> int:
        """How many requests this worker currently has in flight."""
        with self._pending_lock:
            return len(self._pending)

    def alive(self) -> bool:
        """Whether the worker can still take requests.

        The dead-flag check comes first: the pipe's death (receiver EOF)
        is the authoritative signal, and ``process.is_alive()`` can lag
        it by the length of a SIGTERM delivery.
        """
        if self._closed or self._dead_error is not None:
            return False
        if self._process is not None:
            return self._process.is_alive()
        return self._thread is not None and self._thread.is_alive()

    def request(
        self, message: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Send one tagged frame and block for *its* response.

        Concurrent callers multiplex over the one pipe.  ``timeout``
        bounds the wait: expiry abandons the id (the late response is
        discarded by the receiver) and raises the typed
        :class:`RequestTimeoutError`.
        """
        if self._closed:
            raise ServerClosedError(f"worker {self.index} is closed")
        request_id = next(self._ids)
        future: Future = Future()
        with self._pending_lock:
            if self._dead_error is not None:
                raise self._dead_error
            self._pending[request_id] = future
        frame = dict(message)
        frame["id"] = request_id
        try:
            with self._send_lock:
                self._conn.send(frame)
        except (BrokenPipeError, OSError, ValueError) as error:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise WorkerCrashedError(
                f"worker {self.index} died mid-request ({type(error).__name__})"
            ) from error
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            future.cancel()
            raise RequestTimeoutError(
                f"worker {self.index} did not answer request {request_id} "
                f"within {timeout}s"
            ) from None

    def stop(self, timeout: float = 5.0) -> None:
        """Shut the worker down: shutdown message, join, then terminate."""
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send({"op": "shutdown"})
            except (BrokenPipeError, OSError, ValueError):
                pass
        if self._process is not None:
            self._process.join(timeout)
            if self._process.is_alive():  # pragma: no cover - stuck worker
                self._process.terminate()
                self._process.join(timeout)
        elif self._thread is not None:
            self._thread.join(timeout)
        try:
            self._conn.close()
        except OSError:
            pass
        # Closing the pipe wakes the receiver, which fails any still
        # in-flight ids with the typed closed error.
        self._receiver.join(timeout)
        self._fail_pending(ServerClosedError(f"worker {self.index} is closed"))

    def kill(self) -> None:
        """Hard-kill the worker process (crash-recovery tests only)."""
        if self._process is not None and self._process.is_alive():
            self._process.terminate()
            self._process.join(2.0)


class WorkerPool:
    """A fixed-size pool of multiplexing workers with respawn-and-retry.

    Dispatch picks the worker with the fewest requests in flight
    (round-robin among ties), so a worker chewing on a slow spilling
    execute keeps receiving *only* its fair share while idle workers
    absorb the rest — and thanks to per-worker multiplexing, even the
    busy worker's other sessions stay reachable.  A request that finds
    its worker dead respawns it once and retries — queries are pure
    reads, so the retry is safe — counting the rebuild in
    ``worker_restarts`` (the serving-tier analogue of the probe pool's
    rebuild-or-loud-serial contract).  When a crash fails many in-flight
    ids at once, each dispatch retries independently against the one
    respawned worker.
    """

    def __init__(
        self,
        relations: Mapping[str, Relation],
        base_config: BackendConfig,
        size: int = 2,
        worker_backend: Optional[str] = None,
        events_dir: Optional[str] = None,
        max_sessions: int = MAX_SESSIONS_PER_WORKER,
        concurrency: int = DEFAULT_WORKER_CONCURRENCY,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if concurrency < 1:
            raise ValueError(f"worker concurrency must be >= 1, got {concurrency}")
        if worker_backend is None:
            worker_backend = "fork" if hasattr(os, "fork") else "thread"
        if worker_backend not in ("fork", "thread"):
            raise ValueError(
                f"worker_backend must be 'fork' or 'thread', got {worker_backend!r}"
            )
        self._relations = dict(relations)
        self._base_config = base_config
        self._events_dir = events_dir
        self._max_sessions = max_sessions
        self.backend = worker_backend
        self.size = size
        self.concurrency = concurrency
        self._lock = threading.Lock()
        self._closed = False
        self._next = 0
        self.worker_restarts = 0
        self._workers = [self._spawn(index) for index in range(size)]

    def _events_path(self, index: int) -> Optional[str]:
        if self._events_dir is None:
            return None
        os.makedirs(self._events_dir, exist_ok=True)
        return os.path.join(self._events_dir, f"worker-{index}.jsonl")

    def _spawn(self, index: int) -> Worker:
        return Worker(
            index,
            self._relations,
            self._base_config,
            self.backend,
            events_path=self._events_path(index),
            max_sessions=self._max_sessions,
            concurrency=self.concurrency,
        )

    def relation(self, name: str) -> Optional[Relation]:
        """The pool's current binding for ``name`` (what a respawn serves)."""
        with self._lock:
            return self._relations.get(name)

    def _pick(self) -> int:
        with self._lock:
            if self._closed:
                raise ServerClosedError("the worker pool is closed")
            best = self._next
            best_load = None
            for offset in range(self.size):
                index = (self._next + offset) % self.size
                load = self._workers[index].inflight
                if best_load is None or load < best_load:
                    best, best_load = index, load
                    if load == 0:
                        break
            self._next = (best + 1) % self.size
            return best

    def _ensure_alive(self, index: int) -> Worker:
        with self._lock:
            worker = self._workers[index]
            if worker.alive():
                return worker
            if self._closed:
                raise ServerClosedError("the worker pool is closed")
            self.worker_restarts += 1
            worker = self._spawn(index)
            self._workers[index] = worker
            return worker

    def dispatch(
        self, message: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Send ``message`` to one worker; respawn and retry once on a crash.

        A :class:`RequestTimeoutError` is *not* retried — the caller's
        deadline already expired and the worker is healthy, just slow.
        """
        index = self._pick()
        worker = self._ensure_alive(index)
        try:
            return worker.request(message, timeout=timeout)
        except WorkerCrashedError:
            worker = self._ensure_alive(index)
            return worker.request(message, timeout=timeout)

    def mutate(self, name: str, relation: Relation) -> list:
        """Install ``relation`` under ``name`` across the whole pool.

        Updates the pool's own binding map first — a worker respawned
        *after* the mutation must warm its sessions over the new data —
        then broadcasts a ``mutate`` frame to every live worker and
        returns their responses.
        """
        with self._lock:
            if self._closed:
                raise ServerClosedError("the worker pool is closed")
            self._relations[name] = relation
        return self.broadcast({"op": "mutate", "name": name, "relation": relation})

    def broadcast(self, message: Dict[str, Any]) -> list:
        """Send ``message`` to every live worker and collect the responses."""
        responses = []
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            if not worker.alive():
                continue
            try:
                responses.append(worker.request(dict(message)))
            except (WorkerCrashedError, ServerClosedError):
                continue
        return responses

    def collect_metrics(self) -> list:
        """Every worker's ``registry.collect()`` snapshot (for ``/metrics``)."""
        return [
            response["collected"]
            for response in self.broadcast({"op": "metrics"})
            if response.get("ok")
        ]

    def stats(self) -> Dict[str, Any]:
        """Pool shape plus each worker's session/expression/event stats."""
        with self._lock:
            inflight = [worker.inflight for worker in self._workers]
        return {
            "size": self.size,
            "backend": self.backend,
            "concurrency": self.concurrency,
            "worker_restarts": self.worker_restarts,
            "inflight": inflight,
            "workers": [
                response["stats"]
                for response in self.broadcast({"op": "stats"})
                if response.get("ok")
            ],
        }

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
        for worker in workers:
            worker.stop()
