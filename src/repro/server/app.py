"""The serving front: admission, budget leasing, dispatch, observability.

:class:`ReproServer` is the networked tier over the facade: an
:mod:`asyncio` front accepts JSON query requests, *admits* them against
a bounded in-flight limit (excess load is shed with a typed 503, never
queued unboundedly), *leases* each admitted request an engine budget
from the cross-session :class:`~repro.server.budget.BudgetScheduler`,
and *dispatches* it to a :class:`~repro.server.worker.WorkerPool` of
processes holding warm sessions with pinned plans and forked probe
pools.  Per-request ``budget``/``workers`` overrides travel with the
request and select (or warm) a matching session in the worker — the
serving-tier close of PR 4's fixed-at-construction budget follow-up.

Observability is wired end-to-end: the front keeps its own
:class:`~repro.obs.metrics.MetricsRegistry` (request counts, latency
histogram, shed/error counters, in-flight gauge), ``GET /metrics``
merges it with every worker's snapshot via
:func:`~repro.obs.export.merge_collected` and renders the Prometheus
exposition, workers mirror their event logs to per-worker JSONL files,
and a request carrying ``"trace": true`` gets the front's span
summaries (admit → lease → dispatch) in its response body.

Two serving-tier scale-out mechanisms sit on that pipeline.  Each
worker's pipe is *multiplexed* (tagged request ids, see
:mod:`repro.server.worker`), so one worker serves several requests
concurrently and a slow spilling execute no longer head-of-line-blocks
fast queries; dispatch picks the least-loaded worker.  And the front
keeps an *invalidating result cache* (:mod:`repro.server.cache`): pure
read-only queries repeat without leasing budget or touching a worker,
``POST /mutate`` replaces a relation's rows across every worker and
sweeps the cache entries that read it — in that order, so a stale
result can never be re-learned.

Routes::

    POST /query    {"query": "project[A](R * S)", "budget": 64, ...}
    POST /mutate   {"name": "R", "rows": [[1, 2], [3, 4], ...]}
    GET  /metrics  Prometheus text exposition (front + all workers)
    GET  /stats    JSON: front counters, budget scheduler, cache, pool
    GET  /healthz  liveness probe

Use :meth:`ReproServer.start` for a daemon-thread server (tests, the
load generator) or :meth:`ReproServer.serve_forever` under
``asyncio.run`` for the ``repro serve`` CLI.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..algebra.errors import AlgebraError
from ..algebra.relation import Relation
from ..api.config import BACKENDS, BackendConfig
from ..engine.physical import MemoryBudget
from ..obs.config import Observer, ObserveConfig
from ..obs.export import merge_collected, render_prometheus
from ..obs.tracer import Tracer
from .budget import BudgetScheduler
from .errors import (
    BadRequestError,
    ServerClosedError,
    ServerError,
    ServerOverloadedError,
)
from .http import HttpError, HttpRequest, read_request, split_target, write_response
from .cache import CacheKey, ResultCache
from .worker import WorkerPool

__all__ = ["ReproServer", "ServerConfig"]

#: Lower-layer exception class names that are the *client's* fault: they
#: cross the worker pipe by name and map to HTTP 400 rather than 500.
_CLIENT_FAULT_ERRORS = frozenset(
    {
        "BadRequestError",
        "ExpressionError",
        "SchemeError",
        "SessionError",
        "UnknownBackendError",
    }
)


@dataclass(frozen=True)
class ServerConfig:
    """Every knob of the serving tier, mirroring ``BackendConfig``'s shape.

    ``host`` / ``port``
        Bind address; port 0 picks a free port (read it back from
        ``server.port`` after start — how the tests and load generator
        run without port coordination).
    ``pool_size``
        Worker processes, each holding warm sessions (the serving
        analogue of ``BackendConfig.workers``, which stays the *engine*
        probe parallelism inside one execution).
    ``worker_backend``
        Force ``"fork"`` or ``"thread"`` workers (default: fork where
        available, matching the engine's probe pools).
    ``max_inflight``
        Admission bound: requests beyond this many concurrently being
        served are shed with a typed 503, never queued unboundedly.
    ``total_budget_rows`` / ``default_request_rows`` / ``max_budget_wait_seconds``
        The shared :class:`~repro.server.budget.BudgetScheduler` pool —
        ``None`` total means unlimited (leases are only accounted).
    ``backend`` / ``session_budget`` / ``engine_workers``
        The base :class:`~repro.api.BackendConfig` every worker session
        is derived from; per-request overrides replace the budget/worker
        fields per session-cache entry.
    ``events_dir``
        Mirror each worker's event log to ``<events_dir>/worker-i.jsonl``.
    ``trace``
        Span-trace every execution in the workers (requests can also opt
        in per call with ``"trace": true`` for front spans).
    ``max_sessions_per_worker``
        LRU cap on distinct (budget, workers) sessions a worker keeps.
    ``worker_concurrency``
        How many query frames one worker serves at a time over its
        multiplexed pipe; ``1`` restores the pre-multiplex serialised
        worker (the head-of-line benchmark baseline).
    ``result_cache_size``
        Entry cap of the front's invalidating result cache
        (:class:`~repro.server.cache.ResultCache`); ``0`` disables
        caching entirely.
    ``request_timeout_seconds``
        Per-dispatch deadline: a worker that does not answer a request
        id in time fails that request with the typed 504
        :class:`~repro.server.errors.RequestTimeoutError` (lease
        released, pipe untouched).  ``None`` waits forever.
    """

    host: str = "127.0.0.1"
    port: int = 0
    pool_size: int = 2
    worker_backend: Optional[str] = None
    max_inflight: int = 16
    total_budget_rows: Optional[int] = None
    default_request_rows: Optional[int] = None
    max_budget_wait_seconds: float = 1.0
    backend: str = "engine"
    session_budget: Union[MemoryBudget, int, None] = None
    engine_workers: int = 1
    events_dir: Optional[str] = None
    trace: bool = False
    max_sessions_per_worker: int = 4
    worker_concurrency: int = 4
    result_cache_size: int = 256
    request_timeout_seconds: Optional[float] = None

    def __post_init__(self):
        """Validate the serving-side knobs (backend is checked downstream)."""
        if self.pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {self.pool_size}")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.worker_concurrency < 1:
            raise ValueError(
                f"worker_concurrency must be >= 1, got {self.worker_concurrency}"
            )
        if self.result_cache_size < 0:
            raise ValueError(
                f"result_cache_size must be >= 0, got {self.result_cache_size}"
            )
        if (
            self.request_timeout_seconds is not None
            and self.request_timeout_seconds <= 0
        ):
            raise ValueError(
                "request_timeout_seconds must be positive or None, got "
                f"{self.request_timeout_seconds}"
            )

    def override(self, **changes) -> "ServerConfig":
        """A copy with ``changes`` applied (validated like the constructor)."""
        from dataclasses import replace

        return replace(self, **changes)


class ReproServer:
    """Serve prepared queries over HTTP from a pool of warm worker processes.

    ``relations`` is the ``{name: relation}`` database every worker
    session binds (forked workers inherit it copy-on-write).  ``config``
    carries the serving knobs; keyword overrides are applied on top, so
    ``ReproServer(db, pool_size=4, total_budget_rows=20_000)`` needs no
    explicit config object.
    """

    def __init__(
        self,
        relations: Mapping[str, Relation],
        config: Optional[ServerConfig] = None,
        **overrides,
    ):
        base = config or ServerConfig()
        if overrides:
            base = base.override(**overrides)
        self.config = base
        self._backend_config = BackendConfig(
            backend=base.backend,
            budget=base.session_budget,
            workers=base.engine_workers,
            observe=ObserveConfig(trace=base.trace),
        )
        self._pool = WorkerPool(
            relations,
            self._backend_config,
            size=base.pool_size,
            worker_backend=base.worker_backend,
            events_dir=base.events_dir,
            max_sessions=base.max_sessions_per_worker,
            concurrency=base.worker_concurrency,
        )
        self._scheduler = BudgetScheduler(
            total_rows=base.total_budget_rows,
            default_request_rows=base.default_request_rows,
            max_wait_seconds=base.max_budget_wait_seconds,
        )
        self._observer = Observer(ObserveConfig(metrics=True, events=True))
        self._metrics = self._observer.metrics
        self._cache: Optional[ResultCache] = (
            ResultCache(
                base.result_cache_size,
                metrics=self._metrics,
                events=self._observer.events,
            )
            if base.result_cache_size > 0
            else None
        )
        self._state_lock = threading.Lock()
        self._inflight = 0
        self._closed = False
        self._counters = {
            "requests": 0,
            "queries": 0,
            "mutations": 0,
            "shed_overload": 0,
            "shed_budget": 0,
            "client_errors": 0,
            "server_errors": 0,
        }
        self.port: Optional[int] = None
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------

    async def start_async(self) -> None:
        """Bind the listening socket on the running loop."""
        self._loop = asyncio.get_running_loop()
        self._asyncio_server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Bind and serve until cancelled (the ``repro serve`` path)."""
        await self.start_async()
        try:
            await self._asyncio_server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self._stop_async()
            self._pool.close()

    def start(self) -> "ReproServer":
        """Run the server on a daemon thread; returns once the port is bound.

        The thread-backed form the tests and the load generator use::

            server = ReproServer(relations).start()
            ... http.client against ("127.0.0.1", server.port) ...
            server.close()
        """
        ready = threading.Event()
        failure: list = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.start_async())
            except Exception as error:  # bind failures surface in start()
                failure.append(error)
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self._stop_async())
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout=10.0):
            raise ServerError("server failed to bind within 10s")
        if failure:
            raise failure[0]
        return self

    async def _stop_async(self) -> None:
        server = self._asyncio_server
        if server is not None:
            self._asyncio_server = None
            server.close()
            await server.wait_closed()

    def close(self) -> None:
        """Stop accepting, stop the loop thread, shut the workers. Idempotent."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
        self._pool.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def url(self) -> str:
        """The server's base URL (valid once started)."""
        if self.port is None:
            raise ServerError("the server has not been started")
        return f"http://{self.config.host}:{self.port}"

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- connection handling -------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as error:
                    body = _error_body(type(error).__name__, str(error))
                    await write_response(
                        writer, error.status, body, keep_alive=False
                    )
                    break
                if request is None:
                    break
                status, content_type, body = await self._route(request)
                keep_alive = request.keep_alive and not self._closed
                await write_response(
                    writer, status, body, content_type, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels in-flight handlers; finish quietly so the
            # loop's exception handler stays silent.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _route(self, request: HttpRequest) -> Tuple[int, str, bytes]:
        path, _query = split_target(request.path)
        self._count("requests")
        self._metrics.counter(
            "repro_http_requests_total", help="HTTP requests accepted"
        ).inc()
        if path == "/query":
            if request.method != "POST":
                return 405, "application/json", _error_body(
                    "BadRequestError", "use POST /query"
                )
            return await self._route_query(request)
        if path == "/mutate":
            if request.method != "POST":
                return 405, "application/json", _error_body(
                    "BadRequestError", "use POST /mutate"
                )
            return await self._route_mutate(request)
        if request.method != "GET":
            return 405, "application/json", _error_body(
                "BadRequestError", f"use GET {path}"
            )
        if path == "/metrics":
            text = await asyncio.get_running_loop().run_in_executor(
                None, self.render_metrics
            )
            return 200, "text/plain; version=0.0.4", text.encode("utf-8")
        if path == "/stats":
            stats = await asyncio.get_running_loop().run_in_executor(
                None, self.stats
            )
            return 200, "application/json", _json_body(stats)
        if path == "/healthz":
            return 200, "application/json", _json_body(
                {"ok": True, "workers": self._pool.size, "closed": self._closed}
            )
        return 404, "application/json", _error_body(
            "BadRequestError", f"no route {path!r}"
        )

    async def _route_query(self, request: HttpRequest) -> Tuple[int, str, bytes]:
        try:
            payload = request.json()
        except HttpError as error:
            self._count("client_errors")
            return error.status, "application/json", _error_body(
                type(error).__name__, str(error)
            )
        start = perf_counter()
        try:
            self._admit()
        except ServerOverloadedError as error:
            self._count("shed_overload")
            self._metrics.counter(
                "repro_http_shed_total", help="requests shed by admission control"
            ).inc()
            return error.status, "application/json", _error_body(
                type(error).__name__, str(error)
            )
        try:
            response = await asyncio.get_running_loop().run_in_executor(
                None, self._serve_query, payload
            )
        finally:
            self._leave()
            self._metrics.histogram(
                "repro_http_request_seconds", help="front request latency"
            ).observe(perf_counter() - start)
        return self._encode_query_response(response)

    async def _route_mutate(self, request: HttpRequest) -> Tuple[int, str, bytes]:
        try:
            payload = request.json()
        except HttpError as error:
            self._count("client_errors")
            return error.status, "application/json", _error_body(
                type(error).__name__, str(error)
            )
        response = await asyncio.get_running_loop().run_in_executor(
            None, self._serve_mutate, payload
        )
        return self._encode_query_response(response)

    # -- the query pipeline (runs on an executor thread) ----------------

    def _admit(self) -> None:
        with self._state_lock:
            if self._closed:
                raise ServerClosedError("the server is closed")
            if self._inflight >= self.config.max_inflight:
                raise ServerOverloadedError(
                    f"{self._inflight} requests in flight >= max_inflight="
                    f"{self.config.max_inflight}; shedding load"
                )
            self._inflight += 1
            self._metrics.gauge(
                "repro_http_inflight", help="requests currently being served"
            ).set(self._inflight)

    def _leave(self) -> None:
        with self._state_lock:
            self._inflight -= 1
            self._metrics.gauge(
                "repro_http_inflight", help="requests currently being served"
            ).set(self._inflight)

    def _serve_query(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Validate, consult the result cache, lease, dispatch; always typed.

        Cache lookups happen *after* admission (a cache hit still counts
        against ``max_inflight`` — shedding stays load-based, not
        hit-rate-based) but *before* budget leasing: a hit consumes no
        engine budget at all.  Traced requests bypass the cache entirely
        — their span trees describe a real execution.
        """
        tracer = Tracer() if payload.get("trace") else None
        cache = self._cache if tracer is None else None
        key: Optional[CacheKey] = None
        snapshot = 0
        try:
            message = self._validate_query(payload)
            if cache is not None:
                key = (
                    message["query"],
                    message["backend"],
                    (
                        message["budget_request"]
                        if message["budget_request"] is not None
                        else self._scheduler.default_request_rows
                    ),
                    message["workers"],
                    message["count_only"],
                )
                cached, snapshot = cache.lookup(key)
                if cached is not None:
                    cached["cached"] = True
                    self._count("queries")
                    self._metrics.counter(
                        "repro_http_queries_total", help="queries served"
                    ).inc()
                    return cached
            span = tracer.span("serve", "lease") if tracer else _NULL_SPAN
            with span:
                lease = self._scheduler.acquire(rows=message.pop("budget_request"))
            with lease:
                if lease.rows is not None:
                    message["budget"] = lease.rows
                span = tracer.span("serve", "dispatch") if tracer else _NULL_SPAN
                with span:
                    response = self._pool.dispatch(
                        message, timeout=self.config.request_timeout_seconds
                    )
            if response.get("ok") and cache is not None and key is not None:
                names = response.get("relations", ())
                cache.fill(key, names, response, snapshot)
                response["cached"] = False
        except ServerError as error:
            if isinstance(error, ServerOverloadedError):
                self._count("shed_budget")
                self._metrics.counter(
                    "repro_budget_rejections_total",
                    help="requests shed by the budget scheduler",
                ).inc()
            response = {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            }
        if response.get("ok"):
            self._count("queries")
            self._metrics.counter(
                "repro_http_queries_total", help="queries served"
            ).inc()
        if tracer is not None:
            response["front_spans"] = [s.summary() for s in tracer.finish()]
        return response

    def _serve_mutate(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Replace one relation's rows across the pool, then invalidate.

        The order is the invalidation contract's linchpin: workers see
        the new data *before* the cache drops the name's entries, so a
        concurrent miss that executed against the old data carries a
        pre-invalidation generation snapshot and its fill is rejected —
        the cache can never re-learn a stale result.
        """
        try:
            name = payload.get("name")
            if not isinstance(name, str) or not name:
                raise BadRequestError('the "name" field must be a non-empty string')
            rows = payload.get("rows")
            if not isinstance(rows, list):
                raise BadRequestError('the "rows" field must be a list of rows')
            current = self._pool.relation(name)
            if current is None:
                raise BadRequestError(f"no relation named {name!r} is being served")
            try:
                relation = Relation.from_rows(
                    current.scheme, [tuple(row) for row in rows], name=name
                )
            except (TypeError, ValueError, AlgebraError) as error:
                raise BadRequestError(f"rows do not fit {name!r}'s scheme: {error}")
            acks = self._pool.mutate(name, relation)
            evicted = self._cache.invalidate(name) if self._cache else 0
            self._count("mutations")
            self._metrics.counter(
                "repro_http_mutations_total", help="relation mutations applied"
            ).inc()
            return {
                "ok": True,
                "name": name,
                "rowcount": len(relation),
                "workers_updated": sum(1 for ack in acks if ack.get("ok")),
                "cache_evicted": evicted,
            }
        except ServerError as error:
            return {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            }

    def _validate_query(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            raise BadRequestError('the "query" field must be a non-empty string')
        backend = payload.get("backend")
        if backend is not None and backend not in BACKENDS:
            raise BadRequestError(
                f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
            )
        budget = payload.get("budget")
        if budget is not None and (not isinstance(budget, int) or budget <= 0):
            raise BadRequestError('"budget" must be a positive integer')
        workers = payload.get("workers")
        if workers is not None and (not isinstance(workers, int) or workers < 1):
            raise BadRequestError('"workers" must be an integer >= 1')
        return {
            "op": "query",
            "query": query,
            "backend": backend,
            "workers": workers,
            "count_only": bool(payload.get("count_only")),
            "budget_request": budget,
        }

    def _encode_query_response(
        self, response: Dict[str, Any]
    ) -> Tuple[int, str, bytes]:
        if response.get("ok"):
            return 200, "application/json", _json_body(response)
        name = response.get("error", "ServerError")
        if name in _CLIENT_FAULT_ERRORS:
            self._count("client_errors")
            status = 400
        elif name in ("ServerOverloadedError", "BudgetExhaustedError",
                      "ServerClosedError"):
            status = 503
        elif name == "RequestTimeoutError":
            self._count("server_errors")
            self._metrics.counter(
                "repro_http_timeouts_total",
                help="requests that outlived their worker deadline",
            ).inc()
            status = 504
        else:
            self._count("server_errors")
            self._metrics.counter(
                "repro_http_errors_total", help="requests failed server-side"
            ).inc()
            status = 500
        body = {
            "ok": False,
            "error": name,
            "message": response.get("message", ""),
        }
        if "front_spans" in response:
            body["front_spans"] = response["front_spans"]
        return status, "application/json", _json_body(body)

    # -- observability --------------------------------------------------

    def render_metrics(self) -> str:
        """The Prometheus exposition of the front merged with every worker."""
        collections = [self._metrics.collect()]
        collections.extend(self._pool.collect_metrics())
        return render_prometheus(merge_collected(collections))

    def stats(self) -> Dict[str, Any]:
        """Front counters + budget scheduler + worker pool, one JSON dict."""
        with self._state_lock:
            front = dict(self._counters)
            front["inflight"] = self._inflight
            front["closed"] = self._closed
        return {
            "front": front,
            "budget": self._scheduler.stats(),
            "cache": (
                self._cache.stats()
                if self._cache is not None
                else {"enabled": False}
            ),
            "pool": self._pool.stats(),
        }

    def _count(self, name: str) -> None:
        with self._state_lock:
            self._counters[name] += 1


class _NullSpanHandle:
    """Stand-in span when a request did not ask for front tracing."""

    def __enter__(self):
        return self

    def __exit__(self, *_exc_info):
        return False


_NULL_SPAN = _NullSpanHandle()


def _json_body(value: Dict[str, Any]) -> bytes:
    return json.dumps(value, sort_keys=True, default=str).encode("utf-8")


def _error_body(error: str, message: str) -> bytes:
    return _json_body({"ok": False, "error": error, "message": message})
