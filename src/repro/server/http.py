"""A minimal HTTP/1.1 layer over :mod:`asyncio` streams.

The serving tier speaks just enough HTTP for its four routes: request
line + headers + ``Content-Length`` bodies in, status + headers + body
out, with keep-alive so a load-generator client can reuse one
connection across its whole run.  No chunked transfer, no TLS, no
multipart — the stdlib-only constraint rules out an ASGI server, and
the protocol surface a benchmark client and a Prometheus scraper need
is exactly this small.

Limits are explicit rather than implicit: an oversized request line,
header block, or body fails the *connection* with a typed 400/413
before any engine work is reachable, which keeps the front's admission
control the only queue in the system.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["HttpError", "HttpRequest", "read_request", "write_response"]

#: Hard caps on the inbound protocol surface.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level failure with the status the connection answers."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, path, headers, raw body."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 default keep-alive unless the client opts out."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Dict[str, Any]:
        """The body decoded as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            decoded = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}")
        if not isinstance(decoded, dict):
            raise HttpError(400, "request body must be a JSON object")
        return decoded


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request off ``reader``; ``None`` when the peer closed.

    Raises :class:`HttpError` for malformed or oversized input — the
    handler answers with that status and closes the connection.
    """
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version}")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        raw = await reader.readline()
        if not raw or raw in (b"\r\n", b"\n"):
            break
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(400, "header block too large")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {length_header!r}")
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {length_header!r}")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
    return HttpRequest(method=method, path=target, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialise one response to wire bytes."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
) -> None:
    """Write one response and flush it."""
    writer.write(render_response(status, body, content_type, keep_alive))
    await writer.drain()


def split_target(target: str) -> Tuple[str, str]:
    """Split a request target into (path, raw query string)."""
    path, _sep, query = target.partition("?")
    return path, query
