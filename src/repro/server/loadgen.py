"""The load generator: concurrent keep-alive clients over mixed queries.

One thread per client, one persistent :class:`http.client.HTTPConnection`
per thread (keep-alive, so the measured latency is request handling, not
TCP setup), each client walking the query mix round-robin from its own
offset so every plan in the mix stays warm on every worker.  Latencies
are collected per request and summarised with *exact* percentiles from
the sorted sample — no histogram buckets between the benchmark and its
gate.

``run_load(..., zipf=s)`` switches the uniform round-robin walk to a
Zipf-skewed mix: query rank ``k`` (0-based position in ``queries``) is
drawn with probability proportional to ``1 / (k + 1) ** s``, from a
deterministic per-client stream — real serving traffic concentrates on
a few hot queries, and the skewed leg of the server benchmark measures
p50/p99 under exactly that concentration (hot plans served from the
pinned-plan and pool caches, cold plans still exercised in the tail).

This is both the benchmark harness behind the ``server`` section of
``BENCH_algebra.json`` and the smoke client the CI server job runs.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["LoadReport", "percentile", "run_load", "zipf_schedule"]


def zipf_schedule(
    count: int, requests: int, s: float, seed: int = 0
) -> List[int]:
    """A deterministic Zipf(s)-skewed sequence of query indices.

    Index ``k`` appears with probability proportional to
    ``1 / (k + 1) ** s`` — rank 0 is the hot query.  Deterministic in
    ``seed`` so benchmark legs are reproducible; each client passes its
    own offset as the seed to decorrelate the streams.
    """
    if count < 1:
        raise ValueError(f"zipf_schedule needs at least one query, got {count}")
    if s <= 0:
        raise ValueError(f"zipf skew must be positive, got {s}")
    weights = [1.0 / (rank + 1) ** s for rank in range(count)]
    rng = random.Random(seed)
    return rng.choices(range(count), weights=weights, k=requests)


def percentile(latencies: Sequence[float], q: float) -> float:
    """The exact ``q``-th percentile (nearest-rank) of a non-empty sample."""
    if not latencies:
        raise ValueError("percentile of an empty sample")
    ordered = sorted(latencies)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]


@dataclass
class LoadReport:
    """One load run's outcome: counts, throughput, latency percentiles.

    The population split is exact and disjoint: ``ok`` (HTTP 200),
    ``rejected`` (HTTP 503 — load shed by admission control or the
    budget scheduler), ``errors`` (everything else, including transport
    failures).  ``latencies_ms`` holds **completed (200) requests
    only** — a shed request turns around in microseconds, and folding
    those near-zero samples into the percentiles would make an
    overloaded server look *faster* as it rejects more.  The regression
    test pins this: p50/p99 must not move when rejections are added to a
    run.
    """

    clients: int
    requests: int
    ok: int
    errors: int
    rejected: int
    seconds: float
    latencies_ms: List[float] = field(default_factory=list)
    status_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def shed(self) -> int:
        """Alias of ``rejected`` (the pre-PR-10 field name)."""
        return self.rejected

    @property
    def throughput_rps(self) -> float:
        """Successful requests per wall-clock second."""
        return self.ok / self.seconds if self.seconds > 0 else 0.0

    def p50_ms(self) -> float:
        """Median completed-request latency in milliseconds."""
        return percentile(self.latencies_ms, 50)

    def p99_ms(self) -> float:
        """99th-percentile completed-request latency in milliseconds."""
        return percentile(self.latencies_ms, 99)

    def summary(self) -> Dict[str, Any]:
        """The report as a plain dict (the benchmark section's shape)."""
        return {
            "clients": self.clients,
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "rejected": self.rejected,
            "shed": self.rejected,
            "seconds": round(self.seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.p50_ms(), 3) if self.latencies_ms else None,
            "p99_ms": round(self.p99_ms(), 3) if self.latencies_ms else None,
            "status_counts": {
                str(status): count
                for status, count in sorted(self.status_counts.items())
            },
        }


def _client_worker(
    host: str,
    port: int,
    queries: Sequence[str],
    offset: int,
    requests: int,
    payload_extra: Dict[str, Any],
    latencies: List[float],
    statuses: List[int],
    barrier: threading.Barrier,
    timeout: float,
    zipf: Optional[float],
) -> None:
    if zipf is not None:
        schedule = zipf_schedule(len(queries), requests, zipf, seed=offset)
    else:
        schedule = [(offset + index) % len(queries) for index in range(requests)]
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        barrier.wait(timeout=timeout)
        for index in range(requests):
            body = dict(payload_extra)
            body["query"] = queries[schedule[index]]
            encoded = json.dumps(body)
            start = perf_counter()
            try:
                connection.request(
                    "POST",
                    "/query",
                    body=encoded,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
                status = response.status
            except (http.client.HTTPException, OSError):
                status = -1
                connection.close()
                connection = http.client.HTTPConnection(host, port, timeout=timeout)
            elapsed_ms = (perf_counter() - start) * 1000.0
            statuses.append(status)
            if status == 200:
                latencies.append(elapsed_ms)
    finally:
        connection.close()


def run_load(
    host: str,
    port: int,
    queries: Sequence[str],
    clients: int = 8,
    requests_per_client: int = 25,
    budget: Optional[int] = None,
    count_only: bool = True,
    timeout: float = 30.0,
    zipf: Optional[float] = None,
) -> LoadReport:
    """Drive ``clients`` concurrent keep-alive clients and report latency.

    Every client starts at its own offset into ``queries`` and walks the
    mix round-robin, so the traffic interleaves all plans at all times.
    ``budget`` attaches a per-request engine-budget override to every
    request — the knob the benchmark uses to demonstrate the override
    under load.  ``zipf`` replaces the round-robin walk with a
    Zipf(``zipf``)-skewed draw over the mix (see :func:`zipf_schedule`):
    the first queries in ``queries`` become hot, the rest become a long
    tail, which is what real serving traffic looks like.  Clients
    synchronise on a barrier so the measured window is fully concurrent
    from the first request.
    """
    if not queries:
        raise ValueError("run_load needs at least one query")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    payload_extra: Dict[str, Any] = {"count_only": count_only}
    if budget is not None:
        payload_extra["budget"] = budget
    per_client_latencies: List[List[float]] = [[] for _ in range(clients)]
    per_client_statuses: List[List[int]] = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(
                host,
                port,
                queries,
                index,
                requests_per_client,
                payload_extra,
                per_client_latencies[index],
                per_client_statuses[index],
                barrier,
                timeout,
                zipf,
            ),
            daemon=True,
        )
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=timeout)
    start = perf_counter()
    for thread in threads:
        thread.join()
    seconds = perf_counter() - start

    latencies = [ms for bucket in per_client_latencies for ms in bucket]
    statuses = [status for bucket in per_client_statuses for status in bucket]
    status_counts: Dict[int, int] = {}
    for status in statuses:
        status_counts[status] = status_counts.get(status, 0) + 1
    ok = status_counts.get(200, 0)
    rejected = status_counts.get(503, 0)
    return LoadReport(
        clients=clients,
        requests=len(statuses),
        ok=ok,
        errors=len(statuses) - ok - rejected,
        rejected=rejected,
        seconds=seconds,
        latencies_ms=latencies,
        status_counts=status_counts,
    )
