"""The networked serving tier: HTTP front, worker pool, shared budget.

``repro.server`` lifts the facade's prepare-once/execute-many discipline
to a deployment: an asyncio HTTP front (:class:`ReproServer`) admits
JSON query requests against a bounded in-flight limit, leases each one
an engine memory budget from a cross-session
:class:`BudgetScheduler` pool, and dispatches it to a
:class:`~repro.server.worker.WorkerPool` of processes holding warm
:class:`~repro.api.Session`\\ s — pinned plans, forked probe pools, and
per-request ``budget``/``workers`` overrides served from a small LRU of
session configs.  Each worker's pipe is *multiplexed* (tagged request
ids), so one worker serves many requests at once and a slow spilling
execute never head-of-line-blocks fast queries; the front adds an
*invalidating* :class:`ResultCache` over pure read-only queries, kept
honest by ``POST /mutate``'s pool-first-then-invalidate ordering.
Observability is wired end-to-end: ``GET /metrics``
merges the front's and every worker's registries into one Prometheus
exposition, workers mirror event logs to per-worker JSONL files, and
requests can opt into front span traces.

Start one in-process (tests, benchmarks)::

    from repro.server import ReproServer
    from repro.workloads import serving_relations

    with ReproServer(serving_relations(), pool_size=2) as server:
        ...  # POST http://127.0.0.1:{server.port}/query

or from the shell: ``repro serve --port 8080``.  See ``docs/SERVER.md``.
"""

from .app import ReproServer, ServerConfig
from .budget import BudgetLease, BudgetScheduler
from .cache import ResultCache
from .errors import (
    BadRequestError,
    BudgetExhaustedError,
    RequestTimeoutError,
    ServerClosedError,
    ServerError,
    ServerOverloadedError,
    WorkerCrashedError,
)
from .loadgen import LoadReport, percentile, run_load, zipf_schedule
from .worker import Worker, WorkerPool

__all__ = [
    "BadRequestError",
    "BudgetExhaustedError",
    "BudgetLease",
    "BudgetScheduler",
    "LoadReport",
    "ReproServer",
    "RequestTimeoutError",
    "ResultCache",
    "ServerClosedError",
    "ServerConfig",
    "ServerError",
    "ServerOverloadedError",
    "Worker",
    "WorkerCrashedError",
    "WorkerPool",
    "percentile",
    "run_load",
    "zipf_schedule",
]
