"""The front's invalidating result cache for read-only queries.

Queries in this tier are pure functions of ``(query text, backend,
budget, workers)`` **until a relation changes** — so the front keeps a
small LRU of finished responses and answers repeats without leasing a
budget or touching a worker.  The contract that makes that safe is
*per-relation-name invalidation*: every cached entry records which
relation names its expression read (the worker reports them from the
parsed expression's operands), and a mutation of name *X* evicts exactly
the entries that read *X*.

Correctness under concurrency is generational.  The cache keeps one
monotonic ``generation`` counter and a per-name ``invalidated_at`` mark:

* :meth:`lookup` returns the entry **and** the generation it observed;
* a miss that goes on to execute calls :meth:`fill` with that snapshot,
  and the fill is **dropped** if any of the response's names was
  invalidated after the snapshot — this closes the stale-refill race
  where a mutation lands between a miss's execute and its fill;
* :meth:`lookup` also re-validates at serve time: an entry whose names
  were invalidated after it was cached is never returned.  That path is
  a *tripwire* — :meth:`invalidate` already evicted those entries under
  the same lock, so the ``stale_served`` counter (exported as
  ``repro_server_cache_stale_served_total``) must stay zero; CI asserts
  it, like the engine's ``spill_overflows``.

Invalidation order matters at the call site: the server applies a
mutation to the worker pool *first* and invalidates *second*, so any
miss that raced the mutation and executed against old data carries a
pre-invalidation snapshot and its fill is dropped.

Counters surface in three places with one spelling each way:
``cache_hits`` / ``cache_misses`` / ``cache_invalidations`` in
``/stats``, ``repro_server_cache_*`` in ``/metrics``, ``cache_hit`` /
``cache_invalidate`` events in the front's event log, and the
process-global :class:`~repro.perf.counters.KernelCounters`
``result_cache_*`` fields for benchmarks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Tuple

from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry
from ..perf.counters import kernel_counters

__all__ = ["CacheKey", "ResultCache"]

#: ``(query, backend, budget, workers, count_only)`` — the full set of
#: request fields that select a distinct execution, and nothing else.
CacheKey = Tuple[str, Optional[str], Optional[int], Optional[int], bool]


class _Entry:
    """One cached response: payload, the names it read, its snapshot."""

    __slots__ = ("response", "names", "cached_at")

    def __init__(self, response: Dict[str, Any], names: Tuple[str, ...], cached_at: int):
        self.response = response
        self.names = names
        self.cached_at = cached_at


class ResultCache:
    """A bounded LRU of query responses with per-name invalidation.

    ``capacity`` bounds the entry count (LRU eviction past it).  The
    optional ``metrics`` registry and ``events`` log belong to the front
    — the cache registers its instruments eagerly so a scrape renders
    them at zero before any traffic.  Thread-safe throughout: lookups,
    fills, and invalidations may race from executor threads.
    """

    def __init__(
        self,
        capacity: int,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._generation = 0
        self._invalidated_at: Dict[str, int] = {}
        self._counters = {
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_invalidations": 0,
            "cache_evictions": 0,
            "cache_stale_fill_drops": 0,
            "cache_stale_served": 0,
        }
        self._events = events
        self._metrics: Dict[str, Any] = {}
        if metrics is not None:
            self._metrics = {
                "hits": metrics.counter(
                    "repro_server_cache_hits_total",
                    help="result-cache lookups answered without a worker dispatch",
                ),
                "misses": metrics.counter(
                    "repro_server_cache_misses_total",
                    help="result-cache lookups that paid the lease+dispatch path",
                ),
                "invalidations": metrics.counter(
                    "repro_server_cache_invalidations_total",
                    help="per-relation-name invalidation sweeps",
                ),
                "stale_served": metrics.counter(
                    "repro_server_cache_stale_served_total",
                    help="entries caught stale at serve time (tripwire: must stay 0)",
                ),
                "entries": metrics.gauge(
                    "repro_server_cache_entries",
                    help="result-cache entries currently resident",
                ),
            }

    # -- the read path --------------------------------------------------

    def lookup(self, key: CacheKey) -> Tuple[Optional[Dict[str, Any]], int]:
        """Return ``(response copy or None, generation snapshot)``.

        The snapshot is taken under the cache lock *before* any
        execution a miss goes on to do, which is exactly what makes the
        later :meth:`fill` safe to accept or drop.
        """
        with self._lock:
            snapshot = self._generation
            entry = self._entries.get(key)
            if entry is not None and self._stale(entry):
                # Unreachable unless invalidate() failed to evict — the
                # tripwire half of the no-stale-results contract.
                self._entries.pop(key, None)
                self._counters["cache_stale_served"] += 1
                if "stale_served" in self._metrics:
                    self._metrics["stale_served"].inc()
                entry = None
            if entry is None:
                self._counters["cache_misses"] += 1
                if "misses" in self._metrics:
                    self._metrics["misses"].inc()
                kernel_counters().add(result_cache_misses=1)
                return None, snapshot
            self._entries.move_to_end(key)
            self._counters["cache_hits"] += 1
            if "hits" in self._metrics:
                self._metrics["hits"].inc()
            response = dict(entry.response)
        kernel_counters().add(result_cache_hits=1)
        if self._events is not None:
            self._events.emit("cache_hit", query=key[0], names=list(entry.names))
        return response, snapshot

    def _stale(self, entry: _Entry) -> bool:
        # Caller holds the lock.  Strictly *after*: a fill whose miss
        # looked up at the invalidation's own generation executed after
        # the mutation reached the pool, so its data is the new data.
        return any(
            self._invalidated_at.get(name, -1) > entry.cached_at
            for name in entry.names
        )

    # -- the write path -------------------------------------------------

    def fill(
        self,
        key: CacheKey,
        names: Iterable[str],
        response: Dict[str, Any],
        snapshot: int,
    ) -> bool:
        """Cache ``response`` unless its data changed since ``snapshot``.

        ``names`` are the relation names the execution read; ``snapshot``
        is the generation :meth:`lookup` returned for the miss.  Returns
        whether the fill was accepted.
        """
        names = tuple(sorted(set(names)))
        stored = dict(response)
        with self._lock:
            if any(
                self._invalidated_at.get(name, -1) > snapshot for name in names
            ):
                self._counters["cache_stale_fill_drops"] += 1
                return False
            self._entries[key] = _Entry(stored, names, self._generation)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._counters["cache_evictions"] += 1
            self._update_entries_gauge()
        return True

    def invalidate(self, name: str) -> int:
        """Evict every entry that read ``name``; return the eviction count.

        Bumps the generation first so concurrent misses' pending fills
        (snapshotted earlier) are dropped on arrival.
        """
        with self._lock:
            self._generation += 1
            self._invalidated_at[name] = self._generation
            victims = [
                key
                for key, entry in self._entries.items()
                if name in entry.names
            ]
            for key in victims:
                del self._entries[key]
            self._counters["cache_invalidations"] += 1
            if "invalidations" in self._metrics:
                self._metrics["invalidations"].inc()
            self._update_entries_gauge()
        kernel_counters().add(result_cache_invalidations=1)
        if self._events is not None:
            self._events.emit("cache_invalidate", name=name, evicted=len(victims))
        return len(victims)

    def _update_entries_gauge(self) -> None:
        # Caller holds the lock.
        if "entries" in self._metrics:
            self._metrics["entries"].set(len(self._entries))

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counters plus current shape, for the ``/stats`` cache section."""
        with self._lock:
            snapshot = dict(self._counters)
            snapshot["entries"] = len(self._entries)
            snapshot["capacity"] = self.capacity
            snapshot["generation"] = self._generation
        return snapshot
