"""The cross-session shared :class:`MemoryBudget` scheduler.

PR 4 left the engine's memory budget fixed at ``BackendConfig``
construction: one session, one budget, decided before the first query
arrives.  The serving tier needs the opposite shape — *many* sessions
across *many* worker processes drawing on **one** machine-sized row
pool, with individual requests allowed to ask for more or less than the
default slice.  :class:`BudgetScheduler` is that pool: the front
acquires a :class:`BudgetLease` per admitted request, the leased row
count travels to the worker as the request's engine budget (the worker
serves it from a session constructed with exactly that
:class:`~repro.engine.physical.MemoryBudget`), and the lease is returned
when the response is written.  Concurrent leases can never sum past the
pool, so the fleet's aggregate engine state is bounded the same way one
session's was — the scheduler is the budget contract lifted from
per-session to per-deployment.

Leasing is blocking-with-deadline rather than fail-fast: a request that
cannot be granted immediately waits up to ``max_wait_seconds`` for
in-flight leases to return, then fails with the typed
:class:`~repro.server.errors.BudgetExhaustedError` the front maps to
HTTP 503.  That turns transient memory pressure into queueing delay and
sustained pressure into explicit load shedding — never into silent
overcommit.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from .errors import BudgetExhaustedError

__all__ = ["BudgetLease", "BudgetScheduler"]


class BudgetLease:
    """One request's slice of the shared pool; release exactly once.

    ``rows`` is the granted engine budget (``None`` when the scheduler
    is unlimited and the request asked for nothing — the worker then
    runs the session's default, unbudgeted plan).  Leases are context
    managers; releasing twice is a no-op.
    """

    __slots__ = ("rows", "_scheduler", "_released")

    def __init__(self, rows: Optional[int], scheduler: "BudgetScheduler"):
        self.rows = rows
        self._scheduler = scheduler
        self._released = False

    @property
    def released(self) -> bool:
        """Whether this lease has already been returned to the pool.

        The lease-lifecycle tests pin the contract that *every* request
        outcome — completion, worker crash, request timeout, server
        close — ends with its lease released; this property is how they
        observe it without reaching into the scheduler.
        """
        return self._released

    def release(self) -> None:
        """Return the leased rows to the pool (idempotent)."""
        if not self._released:
            self._released = True
            self._scheduler._release(self)

    def __enter__(self) -> "BudgetLease":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.release()


class BudgetScheduler:
    """Grants bounded row leases from one pool shared by every session.

    ``total_rows`` is the pool (``None`` = unlimited: every acquire is
    granted immediately and only accounted).  ``default_request_rows``
    is the slice granted to requests that do not name a budget; with a
    finite pool and no explicit default it becomes a quarter of the pool,
    so at least four default requests can hold leases concurrently.
    ``max_wait_seconds`` bounds how long an acquire may queue before the
    typed rejection.

    Thread-safe: the front calls :meth:`acquire` from executor threads
    (one per in-flight request), and a ``Condition`` wakes waiters as
    leases return.
    """

    def __init__(
        self,
        total_rows: Optional[int] = None,
        default_request_rows: Optional[int] = None,
        max_wait_seconds: float = 1.0,
    ):
        if total_rows is not None and total_rows <= 0:
            raise ValueError(f"total_rows must be positive, got {total_rows}")
        if default_request_rows is not None and default_request_rows <= 0:
            raise ValueError(
                f"default_request_rows must be positive, got {default_request_rows}"
            )
        if total_rows is not None and default_request_rows is None:
            default_request_rows = max(1, total_rows // 4)
        if (
            total_rows is not None
            and default_request_rows is not None
            and default_request_rows > total_rows
        ):
            raise ValueError(
                f"default_request_rows ({default_request_rows}) exceeds the "
                f"pool ({total_rows})"
            )
        self.total_rows = total_rows
        self.default_request_rows = default_request_rows
        self.max_wait_seconds = max_wait_seconds
        self._condition = threading.Condition()
        self._leased = 0
        self._active = 0
        self._counters = {
            "grants": 0,
            "waits": 0,
            "rejections": 0,
            "peak_leased_rows": 0,
            "peak_active": 0,
        }

    # -- leasing --------------------------------------------------------

    def acquire(
        self, rows: Optional[int] = None, timeout: Optional[float] = None
    ) -> BudgetLease:
        """Lease ``rows`` (or the default slice) from the pool.

        Blocks up to ``timeout`` (default ``max_wait_seconds``) for the
        pool to drain, then raises :class:`BudgetExhaustedError`.  A
        request asking for more than the whole pool is rejected
        immediately — no amount of waiting can satisfy it.
        """
        if rows is not None and rows <= 0:
            raise ValueError(f"leased rows must be positive, got {rows}")
        granted = rows if rows is not None else self.default_request_rows
        if self.total_rows is None:
            with self._condition:
                self._note_grant(granted)
            return BudgetLease(granted, self)
        if granted is None:  # unreachable: a finite pool always has a default
            granted = self.default_request_rows
        if granted > self.total_rows:
            with self._condition:
                self._counters["rejections"] += 1
            raise BudgetExhaustedError(
                f"requested budget of {granted} rows exceeds the shared "
                f"pool of {self.total_rows} rows"
            )
        deadline = timeout if timeout is not None else self.max_wait_seconds
        with self._condition:
            if self._leased + granted > self.total_rows:
                self._counters["waits"] += 1
                granted_in_time = self._condition.wait_for(
                    lambda: self._leased + granted <= self.total_rows,
                    timeout=deadline,
                )
                if not granted_in_time:
                    self._counters["rejections"] += 1
                    raise BudgetExhaustedError(
                        f"no {granted}-row lease available within {deadline}s "
                        f"({self._leased}/{self.total_rows} rows leased to "
                        f"{self._active} request(s))"
                    )
            self._note_grant(granted)
        return BudgetLease(granted, self)

    def _note_grant(self, granted: Optional[int]) -> None:
        # Caller holds the condition lock.
        self._leased += granted or 0
        self._active += 1
        self._counters["grants"] += 1
        self._counters["peak_leased_rows"] = max(
            self._counters["peak_leased_rows"], self._leased
        )
        self._counters["peak_active"] = max(
            self._counters["peak_active"], self._active
        )

    def _release(self, lease: BudgetLease) -> None:
        with self._condition:
            self._leased -= lease.rows or 0
            self._active -= 1
            self._condition.notify_all()

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, Optional[int]]:
        """A snapshot: pool size, leased/active now, grant/wait/rejection totals."""
        with self._condition:
            snapshot: Dict[str, Optional[int]] = dict(self._counters)
            snapshot["total_rows"] = self.total_rows
            snapshot["default_request_rows"] = self.default_request_rows
            snapshot["leased_rows"] = self._leased
            snapshot["active_leases"] = self._active
        return snapshot
