"""Sampling-based cardinality estimation and the adaptive-execution knobs.

The exponential-backoff selectivities of
:func:`repro.engine.stats.estimate_join_cardinality` keep the greedy join
ordering *bounded* on the paper's correlated R_G constructions, but they are
still a guess about value overlap: `tests/test_engine_stats_quality.py`
pins the step-wise divergence that guessing costs at m≈14.  This module
replaces the guess with *measurement*:

* :func:`reservoir_sample` draws a uniform row sample (Algorithm R) from a
  relation in one pass;
* :class:`Sample` carries the sampled rows with their column names and a
  cardinality scale, and estimates **join sizes by joining the samples**
  (``|L ⋈ R| ≈ |S_L ⋈ S_R| · (|L|/|S_L|) · (|R|/|S_R|)`` for uniform row
  samples) — no independence assumption across join columns at all — plus
  per-column distinct counts via the GEE scale-up estimator;
* :func:`sampled_stats` builds a :class:`SampledRelationStats` catalog entry
  (a :class:`~repro.engine.stats.RelationStats` carrying its sample), which
  the stats-propagation functions in :mod:`repro.engine.stats` recognise and
  route through the sample-based estimators, propagating joined samples
  along the plan so *chain-extension* estimates stay measured too;
* :class:`AdaptiveConfig` bundles the sampling knobs with the mid-stream
  re-planning knobs consumed by
  :class:`~repro.engine.evaluator.EngineEvaluator` (``adaptive=``): the
  observed/estimated factor that triggers a re-plan, the re-plan budget,
  and the checkpoint size cap.

Estimation error is tracked: every adaptive evaluation feeds per-operator
q-errors (``max(est/actual, actual/est)``) into
:meth:`repro.perf.counters.KernelCounters.record_q_error`, and every sample
build increments ``sample_builds`` — the statistics the ROADMAP's estimate-
quality follow-up asked to make measurable.

Samples are drawn from :meth:`Relation.sorted_rows` with a caller-provided
seed, so planning is deterministic under ``PYTHONHASHSEED=random`` — the
same property the differential fuzz harness already demands of execution.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from .stats import ColumnStats, RelationStats

__all__ = [
    "AdaptiveConfig",
    "Sample",
    "SampledRelationStats",
    "q_error",
    "reservoir_sample",
    "sampled_stats",
]

Row = Tuple[Hashable, ...]

#: Mixing constant decorrelating derived sample seeds (golden-ratio prime).
_SEED_MIX = 0x9E3779B97F4A7C15
_SEED_MASK = (1 << 63) - 1


def _derive_seed(*parts: int) -> int:
    """Fold integer seed parts into one decorrelated 63-bit seed."""
    seed = 0
    for part in parts:
        seed = ((seed ^ (part & _SEED_MASK)) * _SEED_MIX) & _SEED_MASK
    return seed


def q_error(estimate: float, actual: float) -> float:
    """The q-error of an estimate: ``max(est/actual, actual/est)`` (≥ 1).

    Both quantities are clamped to a floor of 1 row first, so an estimate of
    0.3 rows against an actual of 0 is a perfect 1.0 rather than a division
    by zero — the standard convention in the estimation literature.
    """
    estimate = max(float(estimate), 1.0)
    actual = max(float(actual), 1.0)
    return estimate / actual if estimate >= actual else actual / estimate


def reservoir_sample(rows: Iterable[Row], k: int, rng: random.Random) -> List[Row]:
    """Draw a uniform sample of up to ``k`` rows in one pass (Algorithm R).

    Every row of the input has probability ``k / n`` of appearing in the
    result, independent of position; inputs of at most ``k`` rows are
    returned whole.  The caller owns the ``rng``, which is how the planner
    keeps sampling deterministic per (relation, seed).
    """
    if k <= 0:
        return []
    reservoir: List[Row] = []
    for index, row in enumerate(rows):
        if index < k:
            reservoir.append(row)
            continue
        slot = rng.randint(0, index)
        if slot < k:
            reservoir[slot] = row
    return reservoir


def _gee_distinct(values: Sequence[Hashable], scale: float) -> int:
    """GEE scale-up estimate of a column's distinct count from a sample.

    ``d̂ = √scale · f₁ + (d_sample − f₁)`` where ``f₁`` counts values seen
    exactly once in the sample: values seen twice or more are assumed to
    recur in the unseen rows (contributing once each), while singletons are
    scaled up by the square root of the sampling fraction — Charikar et
    al.'s Guaranteed-Error Estimator, whose worst-case ratio error is
    optimal among sampling estimators.  A full sample (``scale == 1``)
    degenerates to the exact distinct count.
    """
    counts: Dict[Hashable, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    if scale <= 1.0:
        return len(counts)
    singletons = sum(1 for count in counts.values() if count == 1)
    return int(round(math.sqrt(scale) * singletons + (len(counts) - singletons)))


class Sample:
    """A uniform row sample with its column names and cardinality scale.

    ``rows`` are value tuples aligned with ``names``; ``est_cardinality`` is
    the (estimated) cardinality of the population the sample was drawn from,
    so ``scale = est_cardinality / len(rows)`` converts sample counts into
    population estimates.  Base-relation samples carry an exact cardinality;
    joined samples (:meth:`join`) carry the sample-join estimate.
    """

    __slots__ = ("names", "rows", "est_cardinality", "seed", "join_cap")

    def __init__(
        self,
        names: Sequence[str],
        rows: Sequence[Row],
        est_cardinality: float,
        seed: int = 0,
        join_cap: int = 4096,
    ):
        """Wrap ``rows`` (aligned with ``names``) scaled to ``est_cardinality``.

        ``join_cap`` bounds the row count of samples derived from this one
        by :meth:`join` — it rides along so the stats-propagation functions
        need no separate configuration channel.
        """
        self.names: Tuple[str, ...] = tuple(names)
        self.rows: List[Row] = list(rows)
        self.est_cardinality = float(est_cardinality)
        self.seed = seed
        self.join_cap = join_cap

    @property
    def scale(self) -> float:
        """Population rows represented by each sample row (≥ 1)."""
        return max(self.est_cardinality / max(len(self.rows), 1), 1.0)

    def _positions(self, names: Sequence[str]) -> List[int]:
        index = {name: position for position, name in enumerate(self.names)}
        return [index[name] for name in names]

    def distinct_estimate(self, name: str) -> int:
        """Estimated population distinct count of one column (GEE scale-up)."""
        if name not in self.names:
            return 0
        position = self.names.index(name)
        return _gee_distinct([row[position] for row in self.rows], self.scale)

    def column_stats(self, name: str) -> ColumnStats:
        """A :class:`ColumnStats` for one column, estimated from the sample."""
        if name not in self.names or not self.rows:
            return ColumnStats(distinct_count=0)
        position = self.names.index(name)
        values = [row[position] for row in self.rows]
        minimum: Optional[Hashable] = None
        maximum: Optional[Hashable] = None
        try:
            minimum = min(values)
            maximum = max(values)
        except TypeError:
            pass
        return ColumnStats(
            distinct_count=_gee_distinct(values, self.scale),
            minimum=minimum,
            maximum=maximum,
        )

    def join_size(self, other: "Sample", common: Sequence[str]) -> float:
        """Estimate ``|L ⋈ R|`` by counting key matches between the samples.

        For uniform row samples the expected sample-join size is the true
        join size times both sampling fractions, so the estimate is the
        match count scaled by both sides' scales.  Disjoint schemes estimate
        as the full cartesian product.  No cross-column independence is
        assumed — the joint key is matched as one value.
        """
        if not common:
            return self.est_cardinality * other.est_cardinality
        if not self.rows or not other.rows:
            return 0.0
        mine = self._positions(common)
        theirs = other._positions(common)
        counts: Dict[Hashable, int] = {}
        for row in other.rows:
            key = tuple(row[position] for position in theirs)
            counts[key] = counts.get(key, 0) + 1
        matched = 0
        for row in self.rows:
            matched += counts.get(tuple(row[position] for position in mine), 0)
        return matched * self.scale * other.scale

    def join(
        self, other: "Sample", common: Sequence[str], cap: Optional[int] = None
    ) -> "Sample":
        """The joined sample (``left ++ (right − left)`` layout), capped.

        Joining the samples *is* the estimator: the result carries the
        scaled cardinality estimate from :meth:`join_size` and stays a
        (approximately uniform) row sample of the true join, so chain
        extensions keep estimating against measured data.  Results larger
        than ``cap`` rows (default: the operands' smaller ``join_cap``) are
        subsampled back down; disjoint schemes subsample both sides to
        ``√cap`` first so a product of two large samples never
        materialises.
        """
        if cap is None:
            cap = min(self.join_cap, other.join_cap)
        seed = _derive_seed(self.seed, other.seed, len(self.rows), len(other.rows))
        rng = random.Random(seed)
        common_set = frozenset(common)
        extra_positions = [
            position
            for position, name in enumerate(other.names)
            if name not in common_set
        ]
        out_names = self.names + tuple(other.names[p] for p in extra_positions)
        if not common:
            side = max(int(math.isqrt(max(cap, 1))), 1)
            left_rows = self.rows if len(self.rows) <= side else rng.sample(self.rows, side)
            right_rows = (
                other.rows if len(other.rows) <= side else rng.sample(other.rows, side)
            )
            joined = [
                row + tuple(other_row[p] for p in extra_positions)
                for row in left_rows
                for other_row in right_rows
            ]
            return Sample(
                out_names,
                joined,
                self.est_cardinality * other.est_cardinality,
                seed=seed,
                join_cap=cap,
            )
        estimate = self.join_size(other, common)
        mine = self._positions(common)
        theirs = other._positions(common)
        buckets: Dict[Hashable, List[Tuple]] = {}
        for row in other.rows:
            key = tuple(row[position] for position in theirs)
            buckets.setdefault(key, []).append(
                tuple(row[p] for p in extra_positions)
            )
        joined = []
        for row in self.rows:
            for extra in buckets.get(tuple(row[position] for position in mine), ()):
                joined.append(row + extra)
        if len(joined) > cap:
            joined = rng.sample(joined, cap)
        return Sample(
            out_names, joined, max(estimate, float(len(joined))), seed=seed, join_cap=cap
        )

    def project(self, kept_names: Sequence[str]) -> "Sample":
        """The deduplicated projection of the sample onto ``kept_names``.

        The projected sample's cardinality estimate scales the distinct
        projected sample rows GEE-style (duplicates observed in the sample
        recur in the population; singletons scale up), capped by the source
        estimate — the sample analogue of
        :func:`repro.engine.stats.project_stats`.
        """
        positions = self._positions(kept_names)
        projected = [tuple(row[p] for p in positions) for row in self.rows]
        estimate = min(_gee_distinct(projected, self.scale), self.est_cardinality)
        distinct_rows = list(dict.fromkeys(projected))
        return Sample(
            tuple(kept_names),
            distinct_rows,
            max(float(estimate), float(len(distinct_rows))),
            seed=_derive_seed(self.seed, len(positions)),
            join_cap=self.join_cap,
        )

    def stats(self, output_names: Sequence[str]) -> "SampledRelationStats":
        """Wrap this sample as a catalog entry over ``output_names``."""
        cardinality = max(int(round(self.est_cardinality)), 0)
        columns = {name: self.column_stats(name) for name in output_names}
        capped = {
            name: ColumnStats(
                distinct_count=min(column.distinct_count, cardinality),
                minimum=column.minimum,
                maximum=column.maximum,
            )
            for name, column in columns.items()
        }
        return SampledRelationStats(
            cardinality=cardinality, columns=capped, sample=self
        )

    def __repr__(self) -> str:
        return (
            f"Sample({len(self.rows)} rows of ~{self.est_cardinality:.0f}, "
            f"columns={list(self.names)})"
        )


@dataclass(frozen=True)
class SampledRelationStats(RelationStats):
    """A catalog entry that carries the sample its estimates came from.

    Behaves exactly like :class:`~repro.engine.stats.RelationStats` for
    every existing consumer; the stats-propagation functions
    (:func:`~repro.engine.stats.estimate_join_cardinality`,
    :func:`~repro.engine.stats.join_stats`,
    :func:`~repro.engine.stats.project_stats`) detect the ``sample`` field
    on *both* operands and switch to the sample-based estimators, so mixed
    sampled/unsampled plans degrade gracefully to the backoff formulas.
    """

    sample: Optional[Sample] = None


def sampled_stats(
    relation,
    sample_size: int,
    seed: int = 0,
    name: Optional[str] = None,
    join_cap: int = 4096,
) -> SampledRelationStats:
    """Build the sampled catalog entry for a relation.

    Rows are drawn by :func:`reservoir_sample` from the relation's
    deterministic sorted order, seeded by ``seed`` and (stably) by ``name``
    so distinct operands of one plan sample independently.  A relation of
    at most ``sample_size`` rows is carried whole — its estimates are
    exact.  Each build increments the ``sample_builds`` perf counter, which
    is how the re-sample-on-invalidation contract is asserted.
    """
    from ..perf.counters import kernel_counters

    salt = zlib.crc32(name.encode("utf-8")) if name else 0
    rng = random.Random(_derive_seed(seed, salt))
    rows = reservoir_sample(relation.sorted_rows(), sample_size, rng)
    sample = Sample(
        relation.scheme.names,
        rows,
        float(len(relation)),
        seed=_derive_seed(seed, salt, 1),
        join_cap=join_cap,
    )
    kernel_counters().add(sample_builds=1)
    entry = sample.stats(relation.scheme.names)
    # Base-relation cardinality is known exactly — never estimated.
    return SampledRelationStats(
        cardinality=len(relation), columns=entry.columns, sample=sample
    )


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs for sampled estimation and mid-stream re-planning.

    ``sample_size``
        Rows per base-relation reservoir sample (relations at most this
        size are carried whole, making their estimates exact).
    ``sample_join_cap``
        Row cap on propagated (joined) samples; larger join samples are
        reservoir-subsampled back down, trading accuracy for bounded
        planning cost.
    ``seed``
        Base seed for every sample drawn under this config (planning is
        deterministic given the seed).
    ``replan_factor``
        A guarded operator whose observed output exceeds
        ``replan_factor × estimate`` triggers a mid-stream re-plan.
    ``replan_min_rows``
        Absolute floor below which a guard never triggers — tiny queries
        re-plan nothing regardless of relative error.
    ``max_replans``
        Re-plans allowed per evaluation; once exhausted the current plan
        runs to completion unguarded.
    ``checkpoint_cap_rows``
        Row cap on the materialised checkpoint; a checkpoint that would
        exceed it abandons the re-plan and the original plan runs to
        completion instead (correct either way).
    """

    sample_size: int = 512
    sample_join_cap: int = 4096
    seed: int = 0
    replan_factor: float = 4.0
    replan_min_rows: int = 256
    max_replans: int = 2
    checkpoint_cap_rows: int = 200_000

    def __post_init__(self) -> None:
        """Validate the knobs (positive sizes, factor > 1)."""
        if self.sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {self.sample_size}")
        if self.sample_join_cap < 1:
            raise ValueError(
                f"sample_join_cap must be >= 1, got {self.sample_join_cap}"
            )
        if self.replan_factor <= 1.0:
            raise ValueError(
                f"replan_factor must exceed 1, got {self.replan_factor}"
            )
        if self.max_replans < 0:
            raise ValueError(f"max_replans must be >= 0, got {self.max_replans}")

    @classmethod
    def coerce(
        cls, value: "AdaptiveConfig | bool | None"
    ) -> "Optional[AdaptiveConfig]":
        """Normalise ``True``/``False``/``None`` into a config (or ``None``)."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"adaptive must be an AdaptiveConfig, True, False, or None, "
            f"got {type(value).__name__}"
        )
