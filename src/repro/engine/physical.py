"""Streaming physical operators: block iterators over raw positional rows.

Every operator consumes and produces *blocks* — plain Python lists of raw
value tuples aligned with the operator's output scheme — rather than single
rows, so the per-row cost stays a tight inner loop (the same discipline as
the materialising kernel in :mod:`repro.algebra.relation`) while only
operator *state* (hash tables, dedup sets, sort buffers) is ever resident.
Intermediate join results are never materialised: a probe row flows through
the whole operator tree and is dropped as soon as the root has consumed it.

The iterator contract (see ``docs/ENGINE.md``):

* ``blocks()`` returns a fresh generator of ``List[Row]`` blocks; rows are
  tuples aligned with ``operator.scheme.names``; blocks are never retained
  by the producer and may be mutated by the consumer.
* An operator acquires meter budget (``MemoryMeter.acquire``) for every row
  it holds in state and releases it when the generator is exhausted or
  closed — ``peak_live_rows`` therefore measures rows *resident* in the
  engine, the streaming analogue of the materialising evaluators' peak
  intermediate cardinality.
* ``output_order`` names the attributes the output is sorted on (``None``
  when unordered).  :class:`Sort` establishes an order, :class:`MergeJoin`
  requires one on both inputs and preserves it on the join key.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..perf.counters import kernel_counters
from ..perf.plancache import JoinPlan, make_key_picker
from .stats import RelationStats

__all__ = [
    "BLOCK_ROWS",
    "MemoryMeter",
    "PhysicalOperator",
    "TableScan",
    "StreamingProject",
    "HashJoin",
    "MergeJoin",
    "Sort",
    "StreamingUnion",
    "StreamingDifference",
]

Row = Tuple[Hashable, ...]
Block = List[Row]

#: Rows per block.  Large enough to amortise generator suspension, small
#: enough that an in-flight block never rivals operator state for memory.
BLOCK_ROWS = 1024

_COUNTERS = kernel_counters()


class MemoryMeter:
    """Tracks rows resident in engine state, and the high-water mark.

    One meter is shared by every operator of an executing plan (plus the
    evaluator's result accumulator), so ``peak`` is the peak number of rows
    *simultaneously* live anywhere in the engine — deliberately a stricter
    accounting than the materialising evaluators' per-step maximum.
    """

    __slots__ = ("current", "peak")

    def __init__(self) -> None:
        self.current = 0
        self.peak = 0

    def acquire(self, rows: int = 1) -> None:
        """Record ``rows`` additional rows becoming resident."""
        self.current += rows
        if self.current > self.peak:
            self.peak = self.current

    def release(self, rows: int) -> None:
        """Record ``rows`` rows being dropped from state."""
        self.current -= rows


class PhysicalOperator:
    """Base class of the physical operators.

    Concrete operators set ``scheme`` (the output
    :class:`~repro.algebra.schema.RelationScheme`), ``output_order``, and
    implement :meth:`blocks`.  ``rows_out`` counts rows yielded by the most
    recent execution, so the evaluator can trace per-operator cardinalities
    without materialising anything.  ``est_rows`` / ``est_cost`` are filled
    in by the planner and are purely informational at execution time.
    """

    scheme: Any
    output_order: Optional[Tuple[str, ...]] = None
    est_rows: float = 0.0
    est_cost: float = 0.0
    rows_out: int = 0

    def __init__(self, meter: MemoryMeter):
        self.meter = meter

    def blocks(self) -> Iterator[Block]:
        """Yield the output as a sequence of row blocks (fresh generator)."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Row]:
        for block in self.blocks():
            for row in block:
                yield row

    def children(self) -> Tuple["PhysicalOperator", ...]:
        """The input operators (for tracing and explain output)."""
        return ()

    def label(self) -> str:
        """A one-line description used by traces and ``engine-explain``."""
        return type(self).__name__


class TableScan(PhysicalOperator):
    """Stream a stored relation's raw rows.

    The relation belongs to the caller and is not copied, so a scan holds no
    engine state and acquires no meter budget.
    """

    def __init__(self, relation, meter: MemoryMeter, name: Optional[str] = None):
        super().__init__(meter)
        self._relation = relation
        self._name = name or relation.name or "relation"
        self.scheme = relation.scheme

    def blocks(self) -> Iterator[Block]:
        self.rows_out = 0
        block: Block = []
        append = block.append
        for row in self._relation.rows:
            append(row)
            if len(block) >= BLOCK_ROWS:
                self.rows_out += len(block)
                yield block
                block = []
                append = block.append
        if block:
            self.rows_out += len(block)
            yield block

    def label(self) -> str:
        return f"scan {self._name}"


class StreamingProject(PhysicalOperator):
    """Project each row onto a pick list, optionally deduplicating.

    With ``dedup`` (the default) a seen-set holds one entry per *output* row
    — the only state, released on exhaustion.  The planner disables dedup
    when the consumer is a hash-join build side, whose per-key row sets
    deduplicate for free; output duplicates are then possible and the
    consumer must tolerate them.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        pick: Callable[[Row], Row],
        scheme,
        meter: MemoryMeter,
        dedup: bool = True,
    ):
        super().__init__(meter)
        self._child = child
        self._pick = pick
        self._dedup = dedup
        self.scheme = scheme

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self._child,)

    def blocks(self) -> Iterator[Block]:
        self.rows_out = 0
        pick = self._pick
        meter = self.meter
        if not self._dedup:
            for block in self._child.blocks():
                out = [pick(row) for row in block]
                self.rows_out += len(out)
                yield out
            return
        seen: Set[Row] = set()
        add = seen.add
        try:
            for block in self._child.blocks():
                out: Block = []
                append = out.append
                before = len(seen)
                for row in block:
                    values = pick(row)
                    if values not in seen:
                        add(values)
                        append(values)
                meter.acquire(len(seen) - before)
                if out:
                    self.rows_out += len(out)
                    yield out
        finally:
            meter.release(len(seen))
            seen.clear()

    def label(self) -> str:
        dedup = "" if self._dedup else ", no dedup"
        return f"project[{', '.join(self.scheme.names)}]({self._child.label()}{dedup})"


class HashJoin(PhysicalOperator):
    """Streaming hash join: drain the build side into buckets, stream the probe.

    The output layout is fixed by the compiled
    :class:`~repro.perf.plancache.JoinPlan` as ``left ++ (right - left)``
    regardless of which side is built, exactly like the materialising kernel.
    Buckets hold *sets* (full left rows, or right ``(key, extras)``
    fragments — both in bijection with the build side's rows), so duplicates
    from a dedup-free build child collapse in the table.  Only the build side
    is ever resident; a disjoint-scheme join degenerates to a product with a
    single bucket.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        plan: JoinPlan,
        meter: MemoryMeter,
        build_side: str = "right",
    ):
        super().__init__(meter)
        if build_side not in ("left", "right"):
            raise ValueError(f"build_side must be 'left' or 'right', got {build_side!r}")
        self._left = left
        self._right = right
        self._plan = plan
        self.build_side = build_side
        self.scheme = plan.joined_scheme

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self._left, self._right)

    def blocks(self) -> Iterator[Block]:
        self.rows_out = 0
        plan = self._plan
        meter = self.meter
        buckets: Dict[Hashable, Set[Row]] = {}
        resident = 0
        try:
            if self.build_side == "left":
                key_of = plan.left_key_of
                # Acquire per build block, not after the drain: a stateful
                # build-side subtree (e.g. a projection over a join) holds
                # its own metered state *until* the drain completes, and the
                # peak must count both residencies while they overlap.
                for block in self._left.blocks():
                    added = 0
                    for left_values in block:
                        key = key_of(left_values)
                        bucket = buckets.get(key)
                        if bucket is None:
                            buckets[key] = {left_values}
                            added += 1
                        elif left_values not in bucket:
                            bucket.add(left_values)
                            added += 1
                    resident += added
                    meter.acquire(added)
                # Freeze buckets into tuples: faster probe-side iteration
                # and a cheap single-match fast path.
                frozen = {key: tuple(bucket) for key, bucket in buckets.items()}
                right_key_of = plan.right_key_of
                extra_of = plan.right_extra_of
                frozen_get = frozen.get
                for block in self._right.blocks():
                    out: Block = []
                    append = out.append
                    extend = out.extend
                    _COUNTERS.join_probes += len(block)
                    for right_values in block:
                        bucket = frozen_get(right_key_of(right_values))
                        if bucket is not None:
                            extra = extra_of(right_values)
                            if len(bucket) == 1:
                                append(bucket[0] + extra)
                            else:
                                extend(left_values + extra for left_values in bucket)
                    if out:
                        self.rows_out += len(out)
                        yield out
            else:
                key_of = plan.right_key_of
                extra_of = plan.right_extra_of
                for block in self._right.blocks():
                    added = 0
                    for right_values in block:
                        key = key_of(right_values)
                        extra = extra_of(right_values)
                        bucket = buckets.get(key)
                        if bucket is None:
                            buckets[key] = {extra}
                            added += 1
                        elif extra not in bucket:
                            bucket.add(extra)
                            added += 1
                    resident += added
                    meter.acquire(added)
                frozen = {key: tuple(bucket) for key, bucket in buckets.items()}
                left_key_of = plan.left_key_of
                frozen_get = frozen.get
                for block in self._left.blocks():
                    out = []
                    append = out.append
                    extend = out.extend
                    _COUNTERS.join_probes += len(block)
                    for left_values in block:
                        bucket = frozen_get(left_key_of(left_values))
                        if bucket is not None:
                            if len(bucket) == 1:
                                append(left_values + bucket[0])
                            else:
                                extend(left_values + extra for extra in bucket)
                    if out:
                        self.rows_out += len(out)
                        yield out
        finally:
            meter.release(resident)
            buckets.clear()

    def label(self) -> str:
        return f"hash join [build={self.build_side}] on ({', '.join(self._plan.common_names) or 'x'})"


def _merge_key_picker(scheme, names: Tuple[str, ...]) -> Callable[[Row], Hashable]:
    index = scheme.index
    return make_key_picker(tuple(index[name] for name in names))


def _ordered_lt(a: Hashable, b: Hashable) -> bool:
    """A deterministic total preorder over arbitrary hashable key values.

    Native comparison is used only where it is known to be a *total* order
    — numbers across their tower (keeping ``2`` and ``2.0`` equivalent, as
    their hash/equality demands), same-type strings/bytes, and tuples
    element-wise — because merely catching ``TypeError`` is not enough:
    partially ordered types like ``frozenset`` answer ``<`` with ``False``
    in both directions without raising, which would make two independent
    sorts disagree.  Everything else orders by type name then ``repr``.
    (Boundary: equal values of an exotic type whose reprs differ would not
    group adjacently; hash join — the default — has no such restriction.)
    """
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a < b
    type_a, type_b = type(a), type(b)
    if type_a is type_b:
        if type_a is str or type_a is bytes:
            return a < b
        if type_a is tuple:
            for x, y in zip(a, b):
                if _ordered_lt(x, y):
                    return True
                if _ordered_lt(y, x):
                    return False
            return len(a) < len(b)
        return repr(a) < repr(b)
    return (type_a.__name__, repr(a)) < (type_b.__name__, repr(b))


class _OrderedKey:
    """Sort-key wrapper applying :func:`_ordered_lt`.

    Both :class:`Sort` and :class:`MergeJoin` order through this one
    wrapper, so the order a sort produces is exactly the order the merge's
    advance logic assumes.
    """

    __slots__ = ("value",)

    def __init__(self, value: Hashable):
        self.value = value

    def __lt__(self, other: "_OrderedKey") -> bool:
        return _ordered_lt(self.value, other.value)


class MergeJoin(PhysicalOperator):
    """Blocked merge join over inputs already sorted on the join key.

    Both inputs must deliver rows ordered on the common attributes (the
    planner only places a merge join under that invariant, inserting
    :class:`Sort` nodes when configured to).  Only the current key group of
    each side is buffered — the "block" of equal-key rows — so resident
    state is bounded by the largest key group, not the input.  The output
    inherits the key order.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        plan: JoinPlan,
        meter: MemoryMeter,
    ):
        super().__init__(meter)
        if not plan.common_names:
            raise ValueError("merge join requires at least one shared attribute")
        for side in (left, right):
            order = side.output_order or ()
            if tuple(order[: len(plan.common_names)]) != plan.common_names:
                raise ValueError(
                    f"merge join requires inputs sorted on {plan.common_names}, "
                    f"got order {order} from {side.label()}"
                )
        self._left = left
        self._right = right
        self._plan = plan
        self.scheme = plan.joined_scheme
        self.output_order = plan.common_names

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self._left, self._right)

    @staticmethod
    def _groups(
        rows: Iterator[Row], key_of: Callable[[Row], Hashable]
    ) -> Iterator[Tuple[Hashable, List[Row]]]:
        """Yield ``(key, rows)`` groups from a key-ordered row stream."""
        group: List[Row] = []
        group_key: Hashable = None
        for row in rows:
            key = key_of(row)
            if group and key != group_key:
                yield group_key, group
                group = []
            group_key = key
            group.append(row)
        if group:
            yield group_key, group

    def blocks(self) -> Iterator[Block]:
        self.rows_out = 0
        plan = self._plan
        meter = self.meter
        left_groups = self._groups(iter(self._left), plan.left_key_of)
        right_groups = self._groups(iter(self._right), plan.right_key_of)
        extra_of = plan.right_extra_of
        buffered = 0
        out: Block = []
        try:
            left_entry = next(left_groups, None)
            right_entry = next(right_groups, None)
            while left_entry is not None and right_entry is not None:
                left_key, left_group = left_entry
                right_key, right_group = right_entry
                if left_key == right_key:
                    meter.release(buffered)
                    buffered = len(left_group) + len(right_group)
                    meter.acquire(buffered)
                    extras = [extra_of(right_values) for right_values in right_group]
                    for left_values in left_group:
                        out.extend(left_values + extra for extra in extras)
                        if len(out) >= BLOCK_ROWS:
                            self.rows_out += len(out)
                            yield out
                            out = []
                    left_entry = next(left_groups, None)
                    right_entry = next(right_groups, None)
                else:
                    # Keys are drawn from streams sorted by _OrderedKey;
                    # advance the smaller under that same order.
                    if _OrderedKey(left_key) < _OrderedKey(right_key):
                        left_entry = next(left_groups, None)
                    else:
                        right_entry = next(right_groups, None)
            if out:
                self.rows_out += len(out)
                yield out
        finally:
            meter.release(buffered)

    def label(self) -> str:
        return f"merge join on ({', '.join(self._plan.common_names)})"


class Sort(PhysicalOperator):
    """Materialise and sort the input on a key (establishing an output order).

    The whole input is resident while sorting — a sort is never free; the
    planner only pays for it when a downstream merge join (or an explicit
    request) wants the order.  Keys are ordered through :class:`_OrderedKey`
    (native comparison, per-pair ``(type, repr)`` fallback), the same order
    :class:`MergeJoin` advances by.
    """

    def __init__(self, child: PhysicalOperator, key_names: Tuple[str, ...], meter: MemoryMeter):
        super().__init__(meter)
        missing = [name for name in key_names if name not in child.scheme.name_set]
        if missing:
            raise ValueError(f"sort key attributes {missing} not in scheme {child.scheme}")
        self._child = child
        self._key_names = tuple(key_names)
        self._key_of = _merge_key_picker(child.scheme, self._key_names)
        self.scheme = child.scheme
        self.output_order = self._key_names

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self._child,)

    def blocks(self) -> Iterator[Block]:
        self.rows_out = 0
        meter = self.meter
        rows: List[Row] = []
        resident = 0
        try:
            for block in self._child.blocks():
                rows.extend(block)
                meter.acquire(len(block))
                resident += len(block)
            key_of = self._key_of
            rows.sort(key=lambda row: _OrderedKey(key_of(row)))
            for start in range(0, len(rows), BLOCK_ROWS):
                block = rows[start : start + BLOCK_ROWS]
                self.rows_out += len(block)
                yield block
        finally:
            meter.release(resident)
            rows.clear()

    def label(self) -> str:
        return f"sort by ({', '.join(self._key_names)})"


def _align_pick(from_scheme, to_scheme) -> Optional[Callable[[Row], Row]]:
    """A picker realigning rows of ``from_scheme`` to ``to_scheme``'s order."""
    if from_scheme.names == to_scheme.names:
        return None
    from ..algebra.tuples import _project_plan

    return _project_plan(from_scheme, to_scheme).pick


class StreamingUnion(PhysicalOperator):
    """Set union: stream the left input, then unseen rows of the right.

    Resident state is the seen-set — one entry per output row, exactly the
    materialised union's size, but the output itself still streams.
    """

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, meter: MemoryMeter):
        super().__init__(meter)
        if left.scheme != right.scheme:
            raise ValueError(
                f"union requires identical schemes: {left.scheme} vs {right.scheme}"
            )
        self._left = left
        self._right = right
        self._realign = _align_pick(right.scheme, left.scheme)
        self.scheme = left.scheme

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self._left, self._right)

    def blocks(self) -> Iterator[Block]:
        self.rows_out = 0
        meter = self.meter
        seen: Set[Row] = set()
        add = seen.add
        realign = self._realign
        try:
            for source, pick in ((self._left, None), (self._right, realign)):
                for block in source.blocks():
                    out: Block = []
                    append = out.append
                    before = len(seen)
                    for row in block:
                        if pick is not None:
                            row = pick(row)
                        if row not in seen:
                            add(row)
                            append(row)
                    meter.acquire(len(seen) - before)
                    if out:
                        self.rows_out += len(out)
                        yield out
        finally:
            meter.release(len(seen))
            seen.clear()

    def label(self) -> str:
        return "union"


class StreamingDifference(PhysicalOperator):
    """Set difference: drain the right side into a set, stream the left.

    Resident state is the right input (plus a small dedup guard for left
    duplicates when the left child does not deduplicate).
    """

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator, meter: MemoryMeter):
        super().__init__(meter)
        if left.scheme != right.scheme:
            raise ValueError(
                f"difference requires identical schemes: {left.scheme} vs {right.scheme}"
            )
        self._left = left
        self._right = right
        self._realign = _align_pick(right.scheme, left.scheme)
        self.scheme = left.scheme

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self._left, self._right)

    def blocks(self) -> Iterator[Block]:
        self.rows_out = 0
        meter = self.meter
        excluded: Set[Row] = set()
        emitted: Set[Row] = set()
        realign = self._realign
        try:
            for block in self._right.blocks():
                before = len(excluded)
                if realign is not None:
                    excluded.update(realign(row) for row in block)
                else:
                    excluded.update(block)
                meter.acquire(len(excluded) - before)
            for block in self._left.blocks():
                out: Block = []
                append = out.append
                before = len(emitted)
                for row in block:
                    if row not in excluded and row not in emitted:
                        emitted.add(row)
                        append(row)
                meter.acquire(len(emitted) - before)
                if out:
                    self.rows_out += len(out)
                    yield out
        finally:
            meter.release(len(excluded) + len(emitted))
            excluded.clear()
            emitted.clear()

    def label(self) -> str:
        return "difference"
