"""Streaming physical operators: block iterators over raw positional rows.

Every operator consumes and produces *blocks* — plain Python lists of raw
value tuples aligned with the operator's output scheme — rather than single
rows, so the per-row cost stays a tight inner loop (the same discipline as
the materialising kernel in :mod:`repro.algebra.relation`) while only
operator *state* (hash tables, dedup sets, sort buffers) is ever resident.
Intermediate join results are never materialised: a probe row flows through
the whole operator tree and is dropped as soon as the root has consumed it.

The iterator contract (see ``docs/ENGINE.md``):

* ``blocks()`` returns a fresh generator of ``List[Row]`` blocks; rows are
  tuples aligned with ``operator.scheme.names``; blocks are never retained
  by the producer and may be mutated by the consumer.
* An operator acquires meter budget (``MemoryMeter.acquire``) for every row
  it holds in state and releases it when the generator is exhausted or
  closed — ``peak_live_rows`` therefore measures rows *resident* in the
  engine, the streaming analogue of the materialising evaluators' peak
  intermediate cardinality.
* ``output_order`` names the attributes the output is sorted on (``None``
  when unordered).  :class:`Sort` establishes an order, :class:`MergeJoin`
  requires one on both inputs and preserves it on the join key.
"""

from __future__ import annotations

import atexit
import heapq
import os
import pickle
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..perf.counters import kernel_counters
from ..perf.plancache import JoinPlan, make_key_picker
from .faults import EngineFaultError
from .stats import RelationStats

__all__ = [
    "BLOCK_ROWS",
    "SPILL_BLOCK_ROWS",
    "SPILL_IO_RETRIES",
    "AdaptiveGuard",
    "MemoryBudget",
    "MemoryMeter",
    "ReplanTriggered",
    "SpillFile",
    "SpilledCheckpoint",
    "SpillingSeenSet",
    "PhysicalOperator",
    "TableScan",
    "PartitionedScan",
    "StreamingProject",
    "HashJoin",
    "GraceHashJoin",
    "MergeJoin",
    "Sort",
    "StreamingUnion",
    "StreamingDifference",
]

Row = Tuple[Hashable, ...]
Block = List[Row]

#: Rows per block.  Large enough to amortise generator suspension, small
#: enough that an in-flight block never rivals operator state for memory.
BLOCK_ROWS = 1024

#: Rows buffered per spill partition before a pickle flush.  Spill buffers
#: are transient I/O staging, not operator state, and are therefore not
#: metered — keeping them small bounds the unmetered slack per active join
#: to ``fanout * SPILL_BLOCK_ROWS`` rows.
SPILL_BLOCK_ROWS = 128

_COUNTERS = kernel_counters()

#: Attempts per spill-file I/O operation (1 initial + retries).  Transient
#: failures — a busy disk, an injected fault with ``spill_failures`` below
#: this — are absorbed with a short exponential backoff and counted in
#: ``spill_retries``; exhaustion raises a typed
#: :class:`~repro.engine.faults.EngineFaultError` from the operator's
#: ``finally``-protected path, so cleanup still runs.
SPILL_IO_RETRIES = 3

#: Base sleep (seconds) before the first spill I/O retry; doubles per retry.
_SPILL_RETRY_BACKOFF = 0.002

#: Spill directories currently live.  Operators remove their directory in a
#: ``finally``; this registry (plus the atexit hook) is the backstop for the
#: paths that cannot run one — an interpreter dying while a fork-pool holds
#: children, a hard exception during generator teardown.
_ACTIVE_SPILL_DIRS: Set[str] = set()
_SPILL_DIR_LOCK = threading.Lock()


def _new_spill_dir(prefix: str, base: Optional[str]) -> str:
    """Create a spill temp directory and register it for atexit cleanup."""
    path = tempfile.mkdtemp(prefix=prefix, dir=base)
    with _SPILL_DIR_LOCK:
        _ACTIVE_SPILL_DIRS.add(path)
    return path


def _remove_spill_dir(path: str) -> None:
    """Remove a spill directory and deregister it (idempotent)."""
    with _SPILL_DIR_LOCK:
        _ACTIVE_SPILL_DIRS.discard(path)
    shutil.rmtree(path, ignore_errors=True)


@atexit.register
def _cleanup_spill_dirs() -> None:
    """Remove any spill directories still live at interpreter shutdown."""
    with _SPILL_DIR_LOCK:
        leftovers = list(_ACTIVE_SPILL_DIRS)
        _ACTIVE_SPILL_DIRS.clear()
    for path in leftovers:
        shutil.rmtree(path, ignore_errors=True)


def _clear_spill_registry_after_fork() -> None:
    """Forget inherited registrations in a forked child.

    Fork-pool workers inherit the parent's registry; if a child's atexit ran
    it would delete directories the parent is still reading.  The parent
    remains responsible for its own directories.  The lock is replaced, not
    taken: another parent thread may have held it at fork time (the same
    hazard :mod:`repro.perf.counters` guards against).
    """
    global _SPILL_DIR_LOCK
    _SPILL_DIR_LOCK = threading.Lock()
    _ACTIVE_SPILL_DIRS.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch - CPython >= 3.7
    os.register_at_fork(after_in_child=_clear_spill_registry_after_fork)


@dataclass(frozen=True)
class MemoryBudget:
    """A row budget for engine state, with the spill machinery's knobs.

    ``rows`` caps the rows the shared :class:`MemoryMeter` should hold: a
    hash join whose build side would push the meter past it switches to a
    partitioned (Grace) spill-to-disk join; dedup seen-sets spill through
    :class:`SpillingSeenSet`, sorts through external run-merge, adaptive
    checkpoints through :class:`SpilledCheckpoint`, and an unsplittable
    join partition (one heavy key, a keyless product) falls back to a
    chunked block-nested-loop — every spillable operator honors the
    budget.  What remains transiently metered beyond it (the result
    accumulator, one partition-granularity allowance per replay) is
    bounded and honest: a genuine overrun — distinct rows a partition
    cannot shed even after re-salting stops progressing — is counted in
    ``spill_overflows`` rather than masked.

    ``spill_fanout`` is the default partitions-per-level (a planner estimate
    can override it per join); ``max_recursion`` bounds how many times an
    oversized partition is re-split with a fresh hash salt;
    ``min_partition_rows`` stops re-splitting partitions already tiny;
    ``spill_dir`` hosts the per-join temporary directories (``None`` = the
    system temp dir).
    """

    rows: int
    spill_fanout: int = 8
    max_recursion: int = 4
    min_partition_rows: int = 16
    spill_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ValueError(f"memory budget must be positive, got {self.rows}")
        if self.spill_fanout < 2:
            raise ValueError(f"spill fanout must be >= 2, got {self.spill_fanout}")

    @classmethod
    def coerce(cls, value: "MemoryBudget | int | None") -> "Optional[MemoryBudget]":
        """Normalise ``int`` row counts (and ``None``) into a budget."""
        if value is None or isinstance(value, cls):
            return value
        return cls(rows=int(value))


class MemoryMeter:
    """Tracks rows resident in engine state, and the high-water mark.

    One meter is shared by every operator of an executing plan (plus the
    evaluator's result accumulator), so ``peak`` is the peak number of rows
    *simultaneously* live anywhere in the engine — deliberately a stricter
    accounting than the materialising evaluators' per-step maximum.

    The meter is thread-safe: the parallel probe stage executes one pinned
    plan from several workers sharing a single meter, and the plain
    read-modify-write increments the meter used before this lock existed
    lose updates under that contention (see
    ``tests/test_engine_parallel.py``).  ``budget`` is the optional row
    ceiling operators consult before making state resident; the meter only
    answers the question, the operators do the spilling.

    ``faults`` optionally carries the evaluation's
    :class:`~repro.engine.faults.FaultInjector`; the meter is the one object
    every operator of a plan already shares, so it doubles as the channel
    through which spill files find the injector without widening every
    operator signature.  ``tracer`` and ``events`` ride the same channel:
    a :class:`repro.obs.tracer.Tracer` (``None`` when tracing is off — the
    pay-for-what-you-use contract) and a
    :class:`repro.obs.events.EventLog` for spill/degradation events.
    """

    __slots__ = ("current", "peak", "budget", "faults", "tracer", "events", "_lock")

    def __init__(
        self,
        budget: Optional[int] = None,
        faults: Optional[object] = None,
        tracer: Optional[object] = None,
        events: Optional[object] = None,
    ) -> None:
        self.current = 0
        self.peak = 0
        self.budget = budget
        self.faults = faults
        self.tracer = tracer
        self.events = events
        self._lock = threading.Lock()

    def acquire(self, rows: int = 1) -> None:
        """Record ``rows`` additional rows becoming resident."""
        with self._lock:
            self.current += rows
            if self.current > self.peak:
                self.peak = self.current

    def release(self, rows: int) -> None:
        """Record ``rows`` rows being dropped from state."""
        with self._lock:
            self.current -= rows

    def try_acquire(self, rows: int) -> bool:
        """Acquire ``rows`` only if that stays within the budget (atomic).

        The check and the acquisition happen under one lock, so concurrent
        workers sharing a budgeted meter cannot interleave their way past
        the ceiling unobserved (a check-then-``acquire`` pair could).
        Always succeeds on an unbudgeted meter.
        """
        with self._lock:
            if self.budget is not None and self.current + rows > self.budget:
                return False
            self.current += rows
            if self.current > self.peak:
                self.peak = self.current
            return True

    def headroom(self) -> Optional[int]:
        """Rows still acquirable under the budget (``None`` = unbudgeted)."""
        if self.budget is None:
            return None
        with self._lock:
            return max(self.budget - self.current, 0)


class SpillFile:
    """An append-only spilled row store: pickled blocks in one temp file.

    Rows are buffered in memory up to :data:`SPILL_BLOCK_ROWS` and flushed
    as one pickle frame; :meth:`blocks` re-reads the frames after
    :meth:`finish` seals the file.  Spilled rows live on disk, so they are
    *not* metered — only ``rows`` (the total spilled) is tracked, for
    counters and fan-out decisions.  ``delete`` is idempotent and the
    owning operator always calls it from a ``finally``, so temp files never
    outlive an execution, even one abandoned by ``close()`` or an exception.

    Every I/O operation is attempted up to :data:`SPILL_IO_RETRIES` times
    with exponential backoff (``spill_retries`` counts the retries): spill
    files are the engine's only disk dependency, and a transient ``OSError``
    — real or injected through ``faults`` — must not abort an execution the
    next attempt would complete.  A failed write rewinds and truncates the
    partial pickle frame before retrying, and a failed read seeks back to
    the frame start, so a retried operation never sees a corrupt stream.
    Exhausted retries raise :class:`~repro.engine.faults.EngineFaultError`.
    """

    __slots__ = ("path", "rows", "_file", "_buffer", "_faults", "_tracer", "_events")

    def __init__(
        self,
        path: str,
        faults: Optional[object] = None,
        tracer: Optional[object] = None,
        events: Optional[object] = None,
    ) -> None:
        self.path = path
        self.rows = 0
        self._file = None
        self._buffer: Block = []
        self._faults = faults
        self._tracer = tracer
        self._events = events

    def append(self, row: Row) -> None:
        """Buffer one row, flushing a pickle frame when the buffer fills."""
        self._buffer.append(row)
        if len(self._buffer) >= SPILL_BLOCK_ROWS:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            with tracer.span("spill-write", self.path) as span:
                span.rows = len(self._buffer)
                self._flush_attempts()
        else:
            self._flush_attempts()

    def _flush_attempts(self) -> None:
        faults = self._faults
        last_error: Optional[OSError] = None
        for attempt in range(SPILL_IO_RETRIES):
            if attempt:
                _COUNTERS.add(spill_retries=1)
                if self._events is not None:
                    self._events.emit(
                        "spill-retry", op="write", path=self.path, attempt=attempt
                    )
                time.sleep(_SPILL_RETRY_BACKOFF * (1 << (attempt - 1)))
            try:
                if faults is not None:
                    faults.on_spill_write()
                if self._file is None:
                    self._file = open(self.path, "wb")
                position = self._file.tell()
                try:
                    pickle.dump(self._buffer, self._file, protocol=pickle.HIGHEST_PROTOCOL)
                except OSError:
                    # A partial frame would corrupt every later read: rewind
                    # so the retry (or the next flush) starts on a frame
                    # boundary.
                    self._file.seek(position)
                    self._file.truncate()
                    raise
            except OSError as error:
                last_error = error
                continue
            self.rows += len(self._buffer)
            _COUNTERS.add(spill_rows=len(self._buffer))
            self._buffer = []
            return
        raise EngineFaultError(
            f"spill write to {self.path} failed after {SPILL_IO_RETRIES} "
            f"attempts: {last_error}"
        ) from last_error

    def finish(self) -> None:
        """Flush the tail buffer and seal the file for reading."""
        self._flush()
        if self._file is not None:
            self._file.close()
            self._file = None

    def _open_for_read(self):
        faults = self._faults
        last_error: Optional[OSError] = None
        for attempt in range(SPILL_IO_RETRIES):
            if attempt:
                _COUNTERS.add(spill_retries=1)
                if self._events is not None:
                    self._events.emit(
                        "spill-retry", op="open", path=self.path, attempt=attempt
                    )
                time.sleep(_SPILL_RETRY_BACKOFF * (1 << (attempt - 1)))
            try:
                if faults is not None:
                    faults.on_spill_read()
                return open(self.path, "rb")
            except OSError as error:
                last_error = error
        raise EngineFaultError(
            f"spill read of {self.path} failed after {SPILL_IO_RETRIES} "
            f"attempts: {last_error}"
        ) from last_error

    def blocks(self) -> Iterator[Block]:
        """Stream the spilled blocks back (only valid after ``finish``).

        When a tracer rides along, the whole read stream is wrapped in
        one ``spill-read`` span that accumulates only time spent inside
        the reads (the consumer's processing time does not count).
        """
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            return tracer.stream(
                "spill-read", self.path, self._read_blocks(), rows=lambda: self.rows
            )
        return self._read_blocks()

    def _read_blocks(self) -> Iterator[Block]:
        if self.rows == 0:
            return
        faults = self._faults
        stream = self._open_for_read()
        try:
            while True:
                position = stream.tell()
                last_error: Optional[OSError] = None
                block: Optional[Block] = None
                for attempt in range(SPILL_IO_RETRIES):
                    if attempt:
                        _COUNTERS.add(spill_retries=1)
                        if self._events is not None:
                            self._events.emit(
                                "spill-retry",
                                op="read",
                                path=self.path,
                                attempt=attempt,
                            )
                        time.sleep(_SPILL_RETRY_BACKOFF * (1 << (attempt - 1)))
                    try:
                        if faults is not None:
                            faults.on_spill_read()
                        block = pickle.load(stream)
                    except EOFError:
                        return
                    except OSError as error:
                        last_error = error
                        stream.seek(position)
                        continue
                    break
                else:
                    raise EngineFaultError(
                        f"spill read of {self.path} failed after "
                        f"{SPILL_IO_RETRIES} attempts: {last_error}"
                    ) from last_error
                yield block
        finally:
            stream.close()

    def delete(self) -> None:
        """Drop the buffer and remove the file (idempotent)."""
        self._buffer = []
        if self._file is not None:
            self._file.close()
            self._file = None
        try:
            os.remove(self.path)
        except OSError:
            pass


class SpillingSeenSet:
    """A dedup seen-set under a budget: spills to Grace partitions on overflow.

    The engine's dedup state — projection seen-sets, union/difference
    seen and excluded sets — shares one need: "have I seen this row, and if
    not, remember it".  In memory that is a set; under a budget this class
    *spills* the set using the same salted, bit-mixed partition routing as
    :class:`GraceHashJoin` (equal rows always land in the same partition),
    so membership can be decided one partition at a time.

    Protocol, driven by the owning operator's generator:

    * :meth:`filter_block` returns a block's not-yet-seen rows.  While the
      set fits the budget that happens immediately; after the spill switch
      the rows are routed to partition files tagged *pending* and nothing
      is returned — their first occurrences are emitted by :meth:`drain`.
    * :meth:`note_block` marks rows seen without ever emitting them (a
      difference's excluded right side).
    * :meth:`drain` replays the partitions, re-splitting any whose distinct
      rows still overflow with a fresh salt, and yields the deferred first
      occurrences in blocks.
    * :meth:`close` releases metered state and deletes every spill artifact
      (idempotent; called from the owner's ``finally``, so an abandoned or
      failing execution leaks nothing).

    Emission order is arrival order until the switch and partition order
    after it, so a spilled dedup does **not** preserve an input ordering —
    the planner keeps order-carrying dedups on the in-memory path.

    Metering: the pre-switch set and, during replay, one partition's
    distinct rows are metered.  A partition whose rows fit ``budget.rows``
    is processed resident even when *other* state (the result accumulator,
    a downstream operator) holds the shared meter at its ceiling — the
    budget governs spillable state at partition granularity.  Only a
    partition that outgrows the budget after re-salting stops making
    progress counts a ``spill_overflows``.
    """

    def __init__(self, meter: MemoryMeter, budget: MemoryBudget, prefix: str = "repro-dedup-"):
        self.meter = meter
        self._budget = budget
        self._prefix = prefix
        self._seen: Set[Row] = set()
        self._resident = 0
        self._fanout = budget.spill_fanout
        self._spill_dir: Optional[str] = None
        self._parts: Optional[List[SpillFile]] = None
        self._sequence = 0
        #: Whether this set switched to partitioned spill mode.
        self.spilled = False

    def _new_file(self) -> SpillFile:
        self._sequence += 1
        return SpillFile(
            os.path.join(self._spill_dir, f"part-{self._sequence:06d}.spill"),
            faults=self.meter.faults,
            tracer=self.meter.tracer,
            events=self.meter.events,
        )

    def _switch(self) -> None:
        """Flush the in-memory set to partition files and enter spill mode."""
        self.spilled = True
        self._spill_dir = _new_spill_dir(self._prefix, self._budget.spill_dir)
        self._parts = [self._new_file() for _ in range(self._fanout)]
        _COUNTERS.add(dedup_spills=1, spill_partitions=self._fanout)
        if self.meter.events is not None:
            self.meter.events.emit(
                "spill",
                operator="dedup",
                rows=self._resident,
                fanout=self._fanout,
            )
        parts = self._parts
        fanout = self._fanout
        for row in self._seen:
            parts[_partition_index(0, row, fanout)].append((row, True))
        self._seen.clear()
        self.meter.release(self._resident)
        self._resident = 0

    def filter_block(self, rows: Block) -> Block:
        """Return the rows of ``rows`` never seen before (emit-now path).

        After the spill switch the rows are routed to partitions instead and
        the return value is empty — deferred first occurrences come from
        :meth:`drain`.
        """
        parts = self._parts
        if parts is not None:
            fanout = self._fanout
            for row in rows:
                parts[_partition_index(0, row, fanout)].append((row, False))
            return []
        seen = self._seen
        add = seen.add
        out: Block = []
        append = out.append
        before = len(seen)
        for row in rows:
            if row not in seen:
                add(row)
                append(row)
        added = len(seen) - before
        if added:
            if self.meter.try_acquire(added):
                self._resident += added
            else:
                # The block's new rows were emitted just now and are flushed
                # as already-seen, so the replay will not re-emit them; they
                # were never acquired, so the release in _switch balances.
                self._switch()
        return out

    def note_block(self, rows: Block) -> None:
        """Mark ``rows`` seen without emitting them (an excluded side)."""
        parts = self._parts
        if parts is not None:
            fanout = self._fanout
            for row in rows:
                parts[_partition_index(0, row, fanout)].append((row, True))
            return
        seen = self._seen
        before = len(seen)
        seen.update(rows)
        added = len(seen) - before
        if added:
            if self.meter.try_acquire(added):
                self._resident += added
            else:
                self._switch()

    def drain(self) -> Iterator[Block]:
        """Yield the deferred first occurrences after a spill (in blocks)."""
        if not self.spilled or self._parts is None:
            return
        parts = self._parts
        for part in parts:
            part.finish()
        while parts:
            part = parts.pop(0)
            if part.rows == 0:
                part.delete()
                continue
            for out in self._replay(part, 1, 0):
                yield out

    def _replay(self, part: SpillFile, level: int, resalts: int) -> Iterator[Block]:
        """Replay one partition with a resident per-partition set.

        ``resalts`` counts *consecutive* re-splits that made no progress
        (every row landed in one sub-partition — all-equal rows); a
        productive split resets it, so recursion is bounded by data shape,
        not a fixed depth that a large-but-splittable partition could hit.
        Emissions are buffered until the whole partition is replayed: the
        decision to re-split can arrive mid-file, and rows yielded before
        it would be re-emitted by the sub-partitions.
        """
        meter = self.meter
        budget = self._budget
        seen: Set[Row] = set()
        deferred: Block = []
        resident = 0
        recurse = False
        overflowed = False
        try:
            for block in part.blocks():
                for row, was_seen in block:
                    if row in seen:
                        continue
                    if overflowed:
                        meter.acquire(1)
                    elif not meter.try_acquire(1):
                        if (
                            part.rows > budget.rows
                            and part.rows > budget.min_partition_rows
                            and resalts < budget.max_recursion
                        ):
                            recurse = True
                            break
                        # Partition-granularity allowance: a partition whose
                        # rows fit the budget may be replayed resident even
                        # when other state pins the shared meter; whether the
                        # allowance was an honest overflow is decided below,
                        # from the *distinct* rows actually held.
                        overflowed = True
                        meter.acquire(1)
                    resident += 1
                    seen.add(row)
                    if not was_seen:
                        deferred.append(row)
                if recurse:
                    break
            if recurse:
                meter.release(resident)
                resident = 0
                seen.clear()
                deferred = []
                for out in self._resplit(part, level, resalts):
                    yield out
                return
            if resident > budget.rows:
                # The partition's distinct rows alone outgrew the budget
                # after re-salting stopped making progress — the one case
                # spilling cannot bound, surfaced instead of masked.
                _COUNTERS.add(spill_overflows=1)
            for start in range(0, len(deferred), BLOCK_ROWS):
                yield deferred[start : start + BLOCK_ROWS]
        finally:
            meter.release(resident)
            part.delete()

    def _resplit(self, part: SpillFile, level: int, resalts: int) -> Iterator[Block]:
        """Re-scatter one oversized partition with a fresh salt."""
        fanout = self._fanout
        subs = [self._new_file() for _ in range(fanout)]
        _COUNTERS.add(spill_recursions=1, spill_partitions=fanout)
        for block in part.blocks():
            for row, was_seen in block:
                subs[_partition_index(level, row, fanout)].append((row, was_seen))
        for sub in subs:
            sub.finish()
        made_progress = max(sub.rows for sub in subs) < part.rows
        next_resalts = 0 if made_progress else resalts + 1
        for sub in subs:
            if sub.rows == 0:
                sub.delete()
                continue
            for out in self._replay(sub, level + 1, next_resalts):
                yield out

    def close(self) -> None:
        """Release metered state and delete every spill artifact (idempotent)."""
        self.meter.release(self._resident)
        self._resident = 0
        self._seen.clear()
        if self._parts:
            for part in self._parts:
                part.delete()
        self._parts = None
        if self._spill_dir is not None:
            _remove_spill_dir(self._spill_dir)
            self._spill_dir = None


class SpilledCheckpoint:
    """A checkpoint relation kept on disk instead of in metered memory.

    The adaptive evaluator's mid-stream checkpoints historically had two
    outcomes: fit the budget, or give up the re-plan (``adaptive_giveups``).
    This class adds the third — spill the checkpoint — by quacking like the
    slice of :class:`~repro.algebra.relation.Relation` the engine consumes
    from a binding: ``scheme``, ``name``, ``rows`` (a fresh stream per
    access, so table scans can restart), plus ``sorted_rows`` and
    ``__len__`` for the sampling estimator.  ``sorted_rows`` returns the
    deterministic on-disk order, not the kernel's canonical sort: the
    reservoir sampler needs *a* stable order, and sorting would
    re-materialise exactly what spilling avoided — a spilled checkpoint
    therefore never feeds a merge-join scan directly (the planner sorts
    explicitly when it wants an order).
    """

    def __init__(self, scheme, name: str, budget: MemoryBudget, faults: Optional[object] = None):
        self.scheme = scheme
        self.name = name
        self._dir: Optional[str] = _new_spill_dir("repro-ckpt-", budget.spill_dir)
        self._file = SpillFile(os.path.join(self._dir, "checkpoint.spill"), faults=faults)

    def append(self, row: Row) -> None:
        """Append one checkpointed row."""
        self._file.append(row)

    def finish(self) -> None:
        """Seal the checkpoint for reading."""
        self._file.finish()

    def __len__(self) -> int:
        return self._file.rows

    def _stream(self) -> Iterator[Row]:
        for block in self._file.blocks():
            for row in block:
                yield row

    @property
    def rows(self) -> Iterator[Row]:
        """Stream the checkpointed rows (a fresh, restartable iterator)."""
        return self._stream()

    def sorted_rows(self) -> Iterator[Row]:
        """The rows in their deterministic on-disk order (see class docs)."""
        return self._stream()

    def close(self) -> None:
        """Delete the backing file and directory (idempotent)."""
        self._file.delete()
        if self._dir is not None:
            _remove_spill_dir(self._dir)
            self._dir = None


class PhysicalOperator:
    """Base class of the physical operators.

    Concrete operators set ``scheme`` (the output
    :class:`~repro.algebra.schema.RelationScheme`), ``output_order``, and
    implement :meth:`blocks`.  ``rows_out`` counts rows yielded by the most
    recent execution, so the evaluator can trace per-operator cardinalities
    without materialising anything.  ``est_rows`` / ``est_cost`` are filled
    in by the planner and are purely informational at execution time.
    """

    scheme: Any
    output_order: Optional[Tuple[str, ...]] = None
    est_rows: float = 0.0
    est_cost: float = 0.0
    rows_out: int = 0
    #: High-water mark of rows resident in this operator's hash-join build
    #: state during the most recent execution (0 for non-join operators).
    #: Under a memory budget this is what "never exceeds the build-side
    #: budget" is asserted against.
    build_peak_rows: int = 0
    #: Whether this operator applies the parallel probe-slice filter.  The
    #: trace aggregator sums streamed counts across workers only for this
    #: operator and its ancestors (they see partitioned data); everything
    #: else re-streams identical full data per worker and is reported once.
    consumes_probe_slice: bool = False

    def __init__(self, meter: MemoryMeter):
        self.meter = meter

    def blocks(self) -> Iterator[Block]:
        """Yield the output as a sequence of row blocks (fresh generator).

        When the shared meter carries an enabled tracer the stream is
        wrapped in a timed ``operator`` span; otherwise the operator's
        raw generator is returned untouched, so disabled tracing costs
        one attribute check per operator and nothing per block.
        """
        tracer = self.meter.tracer
        if tracer is None or not tracer.enabled:
            return self._blocks()
        return tracer.operator_stream(self, self._blocks())

    def _blocks(self) -> Iterator[Block]:
        """The operator's block generator (implemented by subclasses)."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Row]:
        for block in self.blocks():
            for row in block:
                yield row

    def children(self) -> Tuple["PhysicalOperator", ...]:
        """The input operators (for tracing and explain output)."""
        return ()

    def label(self) -> str:
        """A one-line description used by traces and ``engine-explain``."""
        return type(self).__name__


class TableScan(PhysicalOperator):
    """Stream a stored relation's raw rows.

    The relation belongs to the caller and is not copied, so a scan holds no
    engine state and acquires no meter budget.
    """

    def __init__(self, relation, meter: MemoryMeter, name: Optional[str] = None):
        super().__init__(meter)
        self._relation = relation
        self._name = name or relation.name or "relation"
        self.scheme = relation.scheme

    def _blocks(self) -> Iterator[Block]:
        """Stream the output blocks (see the operator iterator contract)."""
        self.rows_out = 0
        block: Block = []
        append = block.append
        for row in self._relation.rows:
            append(row)
            if len(block) >= BLOCK_ROWS:
                self.rows_out += len(block)
                yield block
                block = []
                append = block.append
        if block:
            self.rows_out += len(block)
            yield block

    def label(self) -> str:
        """The one-line trace/explain label."""
        return f"scan {self._name}"


#: Salt separating the probe-slice row partition from Grace spill routing.
PROBE_SLICE_SALT = -0x51A5


class PartitionedScan(PhysicalOperator):
    """Stream one hash-slice of a stored relation's raw rows.

    Worker ``index`` of ``count`` yields the rows whose (salted, bit-mixed)
    hash lands on its slice — a *value*-based partition, so it is identical
    across the pool regardless of iteration order, and any duplicates of a
    row always belong to exactly one worker.  The slices are disjoint and
    their union is exactly the relation.  Like :class:`TableScan`, a slice
    holds no engine state.
    """

    def __init__(
        self,
        relation,
        meter: MemoryMeter,
        index: int,
        count: int,
        name: Optional[str] = None,
    ):
        super().__init__(meter)
        if not 0 <= index < count:
            raise ValueError(f"slice index {index} out of range for {count} workers")
        self._relation = relation
        self._index = index
        self._count = count
        self._name = name or relation.name or "relation"
        self.scheme = relation.scheme
        self.consumes_probe_slice = True

    def _blocks(self) -> Iterator[Block]:
        """Stream the output blocks (see the operator iterator contract)."""
        self.rows_out = 0
        index = self._index
        count = self._count
        block: Block = []
        append = block.append
        for row in self._relation.rows:
            if _partition_index(PROBE_SLICE_SALT, row, count) != index:
                continue
            append(row)
            if len(block) >= BLOCK_ROWS:
                self.rows_out += len(block)
                yield block
                block = []
                append = block.append
        if block:
            self.rows_out += len(block)
            yield block

    def label(self) -> str:
        """The one-line trace/explain label."""
        return f"scan {self._name} [partitioned x{self._count}]"


class StreamingProject(PhysicalOperator):
    """Project each row onto a pick list, optionally deduplicating.

    With ``dedup`` (the default) a seen-set holds one entry per *output* row
    — the only state, released on exhaustion.  The planner disables dedup
    when the consumer is a hash-join build side, whose per-key row sets
    deduplicate for free; output duplicates are then possible and the
    consumer must tolerate them.

    ``probe_slice = (index, count)`` keeps only worker ``index``'s
    hash-slice of the *projected* rows.  The parallel probe stage consumes
    its slice here rather than below the projection: distinct input rows
    can project onto the same output row, so a slice taken underneath would
    hand equal projected rows to several workers — each would survive that
    worker's (per-worker) dedup and multiply the downstream streams.
    Slicing the projected value itself gives every distinct output row to
    exactly one worker.

    With ``budget`` set (the planner passes it only for unordered dedup
    projections) the seen-set is a :class:`SpillingSeenSet`: instead of
    overrunning the shared meter it spills to Grace partitions and defers
    the spilled rows' first occurrences to a replay phase.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        pick: Callable[[Row], Row],
        scheme,
        meter: MemoryMeter,
        dedup: bool = True,
        probe_slice: Optional[Tuple[int, int]] = None,
        budget: Optional[MemoryBudget] = None,
    ):
        super().__init__(meter)
        self._child = child
        self._pick = pick
        self._dedup = dedup
        self._probe_slice = probe_slice
        self._budget = budget
        self.consumes_probe_slice = probe_slice is not None
        self.scheme = scheme

    def children(self) -> Tuple[PhysicalOperator, ...]:
        """The input operators."""
        return (self._child,)

    def _project_block(self, block: Block) -> Block:
        """Apply the pick (and the probe-slice filter) to one input block."""
        pick = self._pick
        probe_slice = self._probe_slice
        if probe_slice is None:
            return [pick(row) for row in block]
        index, count = probe_slice
        return [
            values
            for values in map(pick, block)
            if _partition_index(PROBE_SLICE_SALT, values, count) == index
        ]

    def _blocks(self) -> Iterator[Block]:
        """Stream the output blocks (see the operator iterator contract)."""
        if not self._dedup:
            return self._blocks_no_dedup()
        if self._budget is not None:
            return self._blocks_spilling_dedup()
        return self._blocks_dedup()

    def _blocks_no_dedup(self) -> Iterator[Block]:
        self.rows_out = 0
        for block in self._child.blocks():
            out = self._project_block(block)
            if out:
                self.rows_out += len(out)
                yield out

    def _blocks_dedup(self) -> Iterator[Block]:
        self.rows_out = 0
        pick = self._pick
        meter = self.meter
        probe_slice = self._probe_slice
        seen: Set[Row] = set()
        add = seen.add
        try:
            for block in self._child.blocks():
                out: Block = []
                append = out.append
                before = len(seen)
                for row in block:
                    values = pick(row)
                    if probe_slice is not None and (
                        _partition_index(PROBE_SLICE_SALT, values, probe_slice[1])
                        != probe_slice[0]
                    ):
                        continue
                    if values not in seen:
                        add(values)
                        append(values)
                meter.acquire(len(seen) - before)
                if out:
                    self.rows_out += len(out)
                    yield out
        finally:
            meter.release(len(seen))
            seen.clear()

    def _blocks_spilling_dedup(self) -> Iterator[Block]:
        self.rows_out = 0
        seen = SpillingSeenSet(self.meter, self._budget, prefix="repro-dedup-")
        try:
            for block in self._child.blocks():
                out = seen.filter_block(self._project_block(block))
                if out:
                    self.rows_out += len(out)
                    yield out
            for out in seen.drain():
                self.rows_out += len(out)
                yield out
        finally:
            seen.close()

    def label(self) -> str:
        """The one-line trace/explain label."""
        dedup = "" if self._dedup else ", no dedup"
        sliced = (
            f" [sliced x{self._probe_slice[1]}]" if self._probe_slice is not None else ""
        )
        return f"project[{', '.join(self.scheme.names)}]({self._child.label()}{dedup}){sliced}"


class HashJoin(PhysicalOperator):
    """Streaming hash join: drain the build side into buckets, stream the probe.

    The output layout is fixed by the compiled
    :class:`~repro.perf.plancache.JoinPlan` as ``left ++ (right - left)``
    regardless of which side is built, exactly like the materialising kernel.
    Buckets hold *sets* (full left rows, or right ``(key, extras)``
    fragments — both in bijection with the build side's rows), so duplicates
    from a dedup-free build child collapse in the table.  Only the build side
    is ever resident; a disjoint-scheme join degenerates to a product with a
    single bucket.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        plan: JoinPlan,
        meter: MemoryMeter,
        build_side: str = "right",
    ):
        super().__init__(meter)
        if build_side not in ("left", "right"):
            raise ValueError(f"build_side must be 'left' or 'right', got {build_side!r}")
        self._left = left
        self._right = right
        self._plan = plan
        self.build_side = build_side
        self.scheme = plan.joined_scheme

    def children(self) -> Tuple[PhysicalOperator, ...]:
        """The input operators."""
        return (self._left, self._right)

    def _blocks(self) -> Iterator[Block]:
        """Stream the output blocks (see the operator iterator contract)."""
        self.rows_out = 0
        self.build_peak_rows = 0
        plan = self._plan
        meter = self.meter
        buckets: Dict[Hashable, Set[Row]] = {}
        resident = 0
        try:
            if self.build_side == "left":
                key_of = plan.left_key_of
                # Acquire per build block, not after the drain: a stateful
                # build-side subtree (e.g. a projection over a join) holds
                # its own metered state *until* the drain completes, and the
                # peak must count both residencies while they overlap.
                for block in self._left.blocks():
                    added = 0
                    for left_values in block:
                        key = key_of(left_values)
                        bucket = buckets.get(key)
                        if bucket is None:
                            buckets[key] = {left_values}
                            added += 1
                        elif left_values not in bucket:
                            bucket.add(left_values)
                            added += 1
                    resident += added
                    meter.acquire(added)
                # Freeze buckets into tuples: faster probe-side iteration
                # and a cheap single-match fast path.
                frozen = {key: tuple(bucket) for key, bucket in buckets.items()}
                self.build_peak_rows = resident
                right_key_of = plan.right_key_of
                extra_of = plan.right_extra_of
                frozen_get = frozen.get
                for block in self._right.blocks():
                    out: Block = []
                    append = out.append
                    extend = out.extend
                    _COUNTERS.add(join_probes=len(block))
                    for right_values in block:
                        bucket = frozen_get(right_key_of(right_values))
                        if bucket is not None:
                            extra = extra_of(right_values)
                            if len(bucket) == 1:
                                append(bucket[0] + extra)
                            else:
                                extend(left_values + extra for left_values in bucket)
                    if out:
                        self.rows_out += len(out)
                        yield out
            else:
                key_of = plan.right_key_of
                extra_of = plan.right_extra_of
                for block in self._right.blocks():
                    added = 0
                    for right_values in block:
                        key = key_of(right_values)
                        extra = extra_of(right_values)
                        bucket = buckets.get(key)
                        if bucket is None:
                            buckets[key] = {extra}
                            added += 1
                        elif extra not in bucket:
                            bucket.add(extra)
                            added += 1
                    resident += added
                    meter.acquire(added)
                frozen = {key: tuple(bucket) for key, bucket in buckets.items()}
                self.build_peak_rows = resident
                left_key_of = plan.left_key_of
                frozen_get = frozen.get
                for block in self._left.blocks():
                    out = []
                    append = out.append
                    extend = out.extend
                    _COUNTERS.add(join_probes=len(block))
                    for left_values in block:
                        bucket = frozen_get(left_key_of(left_values))
                        if bucket is not None:
                            if len(bucket) == 1:
                                append(left_values + bucket[0])
                            else:
                                extend(left_values + extra for extra in bucket)
                    if out:
                        self.rows_out += len(out)
                        yield out
        finally:
            meter.release(resident)
            buckets.clear()

    def label(self) -> str:
        """The one-line trace/explain label."""
        return f"hash join [build={self.build_side}] on ({', '.join(self._plan.common_names) or 'x'})"


_MIX_MASK = (1 << 64) - 1


def _partition_index(salt: int, key: Hashable, fanout: int) -> int:
    """Scatter a join key into one of ``fanout`` partitions, salted.

    Raw ``hash((salt, key)) % fanout`` is not good enough: CPython's tuple
    hash leaves the low bits *correlated across salts* (keys that collide
    modulo a small fan-out at one salt largely collide again at the next),
    which makes re-salted recursion split nothing and forces the overflow
    path.  A 64-bit avalanche (xor-shift / golden-ratio multiply) over the
    tuple hash decorrelates the levels.
    """
    mixed = hash((salt, key)) & _MIX_MASK
    mixed ^= mixed >> 17
    mixed = (mixed * 0x9E3779B97F4A7C15) & _MIX_MASK
    mixed ^= mixed >> 29
    return mixed % fanout


class GraceHashJoin(HashJoin):
    """Hash join under a memory budget: spill to Grace partitions on overflow.

    Behaves exactly like :class:`HashJoin` while the build side fits under
    the shared meter's budget.  The moment acquiring another build block
    would push the meter past it, the join *switches*: the table built so
    far is flushed to ``fanout`` partition files (hashed on the join key
    with a per-level salt), the rest of the build side streams straight to
    those files, the probe side is streamed to matching partition files —
    probe rows whose build partition is empty are dropped without touching
    disk — and the partitions are then joined one at a time, so only a
    single partition's build table is ever resident.  A partition that
    still exceeds the headroom is re-partitioned with a fresh salt up to
    ``MemoryBudget.max_recursion`` levels; beyond that (or for a partition
    that cannot split — one heavy key, a keyless product) it is joined by a
    block-nested-loop fallback that holds one meter-sized build chunk at a
    time and re-scans the probe partition per chunk
    (``join_chunk_passes``), so the budget holds even for unsplittable
    partitions.

    Correctness is unchanged from :class:`HashJoin`: equal keys always land
    in the same partition, per-partition build buckets are sets (duplicates
    from a dedup-free build child collapse exactly as they do in the
    in-memory table), and the output is the same bag of rows up to block
    boundaries — the evaluator's result set makes it the same *set* either
    way.  Spill files live in a per-execution temp directory removed in a
    ``finally``, so an abandoned or failing execution leaks nothing.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        plan: JoinPlan,
        meter: MemoryMeter,
        budget: MemoryBudget,
        build_side: str = "right",
        fanout_hint: Optional[int] = None,
    ):
        super().__init__(left, right, plan, meter, build_side=build_side)
        self._budget = budget
        self._fanout = max(2, min(int(fanout_hint or budget.spill_fanout), 1024))
        self._spill_sequence = 0
        #: Number of times this operator's most recent execution spilled
        #: (0 = it ran entirely in memory).
        self.spilled = 0

    def _sides(self):
        """Side-generic pickers: (build child, probe child, pickers, combine)."""
        plan = self._plan
        if self.build_side == "left":
            extra_of = plan.right_extra_of

            def entry_of(row: Row) -> Row:
                return row

            def combine(entry: Row, probe_row: Row) -> Row:
                return entry + extra_of(probe_row)

            return self._left, self._right, plan.left_key_of, plan.right_key_of, entry_of, combine

        entry_of = plan.right_extra_of

        def combine(entry: Row, probe_row: Row) -> Row:
            return probe_row + entry

        return self._right, self._left, plan.right_key_of, plan.left_key_of, entry_of, combine

    def _new_spill(self, spill_dir: str, kind: str) -> SpillFile:
        self._spill_sequence += 1
        return SpillFile(
            os.path.join(spill_dir, f"{kind}-{self._spill_sequence:06d}.spill"),
            faults=self.meter.faults,
            tracer=self.meter.tracer,
            events=self.meter.events,
        )

    def _probe_buckets(
        self,
        buckets: Dict[Hashable, Set[Row]],
        probe_blocks: "Iterator[Block]",
        probe_key_of: Callable[[Row], Hashable],
        combine: Callable[[Row, Row], Row],
        count_probes: bool,
    ) -> Iterator[Block]:
        """Stream probe blocks against a finished build table.

        The one probe loop both Grace paths share (whole-input when the
        build never spilled, per-partition otherwise), with the same
        single-match fast path and generator extends as :class:`HashJoin`.
        ``count_probes`` is False for spilled partitions, whose probe rows
        were already counted when they were routed to the partition files.
        """
        frozen = {key: tuple(bucket) for key, bucket in buckets.items()}
        frozen_get = frozen.get
        out: Block = []
        append = out.append
        extend = out.extend
        for block in probe_blocks:
            if count_probes:
                _COUNTERS.add(join_probes=len(block))
            for probe_row in block:
                bucket = frozen_get(probe_key_of(probe_row))
                if bucket is not None:
                    if len(bucket) == 1:
                        append(combine(bucket[0], probe_row))
                    else:
                        extend(combine(entry, probe_row) for entry in bucket)
            if len(out) >= BLOCK_ROWS:
                self.rows_out += len(out)
                yield out
                out = []
                append = out.append
                extend = out.extend
        if out:
            self.rows_out += len(out)
            yield out

    def _blocks(self) -> Iterator[Block]:
        """Stream the output blocks (see the operator iterator contract)."""
        self.rows_out = 0
        self.build_peak_rows = 0
        self.spilled = 0
        meter = self.meter
        budget = self._budget
        build_child, probe_child, build_key_of, probe_key_of, entry_of, combine = self._sides()
        fanout = self._fanout
        salt = 0
        buckets: Dict[Hashable, Set[Row]] = {}
        resident = 0
        spill_dir: Optional[str] = None
        build_parts: Optional[List[SpillFile]] = None
        try:
            # -- build phase -------------------------------------------
            for block in build_child.blocks():
                if build_parts is not None:
                    for row in block:
                        key = build_key_of(row)
                        build_parts[_partition_index(salt, key, fanout)].append((key, entry_of(row)))
                    continue
                added = 0
                for row in block:
                    key = build_key_of(row)
                    entry = entry_of(row)
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = {entry}
                        added += 1
                    elif entry not in bucket:
                        bucket.add(entry)
                        added += 1
                if not added:
                    continue
                if meter.try_acquire(added):
                    resident += added
                    if resident > self.build_peak_rows:
                        self.build_peak_rows = resident
                else:
                    # Switch to Grace mode: flush the table built so far.
                    self.spilled += 1
                    spill_dir = _new_spill_dir("repro-grace-", budget.spill_dir)
                    build_parts = [self._new_spill(spill_dir, "build") for _ in range(fanout)]
                    _COUNTERS.add(join_spills=1, spill_partitions=fanout)
                    if meter.events is not None:
                        meter.events.emit(
                            "spill",
                            operator="grace-join",
                            label=self.label(),
                            rows=resident,
                            fanout=fanout,
                        )
                    for key, bucket in buckets.items():
                        part = build_parts[_partition_index(salt, key, fanout)]
                        for entry in bucket:
                            part.append((key, entry))
                    buckets.clear()
                    meter.release(resident)
                    resident = 0

            if build_parts is None:
                # -- in-memory probe (the build side fit the budget) ---
                for out in self._probe_buckets(
                    buckets, probe_child.blocks(), probe_key_of, combine, True
                ):
                    yield out
                return

            # -- spilled: partition the probe side ---------------------
            for part in build_parts:
                part.finish()
            probe_parts: List[Optional[SpillFile]] = [
                self._new_spill(spill_dir, "probe") if build_parts[index].rows else None
                for index in range(fanout)
            ]
            _COUNTERS.add(
                spill_partitions=sum(1 for part in probe_parts if part is not None)
            )
            for block in probe_child.blocks():
                _COUNTERS.add(join_probes=len(block))
                for probe_row in block:
                    part = probe_parts[_partition_index(salt, probe_key_of(probe_row), fanout)]
                    if part is not None:
                        part.append(probe_row)
            for part in probe_parts:
                if part is not None:
                    part.finish()

            # -- per-partition joins, one build table resident at a time
            for index in range(fanout):
                probe_part = probe_parts[index]
                if probe_part is None:
                    continue
                if probe_part.rows == 0:
                    # No probe rows reached this partition: its build side
                    # can never produce output — skip the load entirely.
                    build_parts[index].delete()
                    probe_part.delete()
                    continue
                for out in self._join_partition(
                    build_parts[index], probe_part, 1, spill_dir, probe_key_of, combine
                ):
                    yield out
        finally:
            meter.release(resident)
            buckets.clear()
            if spill_dir is not None:
                _remove_spill_dir(spill_dir)

    def _join_partition(
        self,
        build_part: SpillFile,
        probe_part: SpillFile,
        depth: int,
        spill_dir: str,
        probe_key_of: Callable[[Row], Hashable],
        combine: Callable[[Row, Row], Row],
    ) -> Iterator[Block]:
        """Join one (build, probe) partition pair, recursing if oversized."""
        meter = self.meter
        budget = self._budget
        buckets: Dict[Hashable, Set[Row]] = {}
        resident = 0
        try:
            for block in build_part.blocks():
                added = 0
                for key, entry in block:
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = {entry}
                        added += 1
                    elif entry not in bucket:
                        bucket.add(entry)
                        added += 1
                if not added:
                    continue
                if meter.try_acquire(added):
                    resident += added
                    if resident > self.build_peak_rows:
                        self.build_peak_rows = resident
                    continue
                meter.release(resident)
                resident = 0
                buckets.clear()
                if (
                    depth < budget.max_recursion
                    and build_part.rows > budget.min_partition_rows
                ):
                    for out in self._recurse_partition(
                        build_part, probe_part, depth, spill_dir, probe_key_of, combine
                    ):
                        yield out
                    return
                # Cannot split further (one heavy key, a keyless product,
                # or the recursion limit): fall back to a block-nested-loop
                # that builds the partition in meter-sized chunks and
                # re-scans the probe partition once per chunk — the budget
                # holds even for unsplittable partitions, at the cost of
                # extra probe-side disk reads.
                for out in self._chunked_join(
                    build_part, probe_part, probe_key_of, combine
                ):
                    yield out
                return
            for out in self._probe_buckets(
                buckets, probe_part.blocks(), probe_key_of, combine, False
            ):
                yield out
        finally:
            meter.release(resident)
            buckets.clear()
            build_part.delete()
            probe_part.delete()

    def _chunked_join(
        self,
        build_part: SpillFile,
        probe_part: SpillFile,
        probe_key_of: Callable[[Row], Hashable],
        combine: Callable[[Row, Row], Row],
    ) -> Iterator[Block]:
        """Block-nested-loop over a partition that cannot be split.

        The build side is loaded in chunks sized by the meter's headroom
        (at least one entry per chunk, so a fully pinned meter still makes
        progress) and the probe partition is re-scanned once per chunk —
        ``join_chunk_passes`` counts the passes.  Unlike the historic
        overflow path this never holds more than one chunk resident, so a
        single heavy key or a keyless product stays within the budget.
        """
        meter = self.meter
        entries = (
            (key, entry) for block in build_part.blocks() for key, entry in block
        )
        pushback: Optional[Tuple[Hashable, Row]] = None
        exhausted = False
        while not exhausted:
            buckets: Dict[Hashable, Set[Row]] = {}
            resident = 0
            try:
                while True:
                    if pushback is not None:
                        key, entry = pushback
                        pushback = None
                    else:
                        nxt = next(entries, None)
                        if nxt is None:
                            exhausted = True
                            break
                        key, entry = nxt
                    bucket = buckets.get(key)
                    if bucket is not None and entry in bucket:
                        continue
                    if resident and not meter.try_acquire(1):
                        # Chunk full: the entry opens the next chunk.
                        pushback = (key, entry)
                        break
                    if not resident and not meter.try_acquire(1):
                        # Guaranteed progress: a chunk's first entry is
                        # admitted even when other state pins the meter.
                        meter.acquire(1)
                    resident += 1
                    if resident > self.build_peak_rows:
                        self.build_peak_rows = resident
                    if bucket is None:
                        buckets[key] = {entry}
                    else:
                        bucket.add(entry)
                if buckets:
                    _COUNTERS.add(join_chunk_passes=1)
                    for out in self._probe_buckets(
                        buckets, probe_part.blocks(), probe_key_of, combine, False
                    ):
                        yield out
            finally:
                meter.release(resident)
                buckets.clear()

    def _recurse_partition(
        self,
        build_part: SpillFile,
        probe_part: SpillFile,
        depth: int,
        spill_dir: str,
        probe_key_of: Callable[[Row], Hashable],
        combine: Callable[[Row, Row], Row],
    ) -> Iterator[Block]:
        """Re-split an oversized partition with a fresh hash salt."""
        budget = self._budget
        fanout = self._fanout
        salt = depth  # a different salt per level re-scatters the keys
        sub_build = [self._new_spill(spill_dir, "build") for _ in range(fanout)]
        _COUNTERS.add(spill_recursions=1, spill_partitions=fanout)
        for block in build_part.blocks():
            for key, entry in block:
                sub_build[_partition_index(salt, key, fanout)].append((key, entry))
        for part in sub_build:
            part.finish()
        sub_probe: List[Optional[SpillFile]] = [
            self._new_spill(spill_dir, "probe") if sub_build[index].rows else None
            for index in range(fanout)
        ]
        _COUNTERS.add(spill_partitions=sum(1 for part in sub_probe if part is not None))
        for block in probe_part.blocks():
            for probe_row in block:
                part = sub_probe[_partition_index(salt, probe_key_of(probe_row), fanout)]
                if part is not None:
                    part.append(probe_row)
        for part in sub_probe:
            if part is not None:
                part.finish()
        # No progress (every row hashed into one sub-partition — a single
        # heavy key): process that sub-partition at the recursion limit so
        # the next level takes the overflow path instead of looping.
        made_progress = max(part.rows for part in sub_build) < build_part.rows
        next_depth = depth + 1 if made_progress else budget.max_recursion
        build_part.delete()
        probe_part.delete()
        for index in range(fanout):
            probe_sub = sub_probe[index]
            if probe_sub is None:
                sub_build[index].delete()
                continue
            if probe_sub.rows == 0:
                sub_build[index].delete()
                probe_sub.delete()
                continue
            for out in self._join_partition(
                sub_build[index], probe_sub, next_depth, spill_dir, probe_key_of, combine
            ):
                yield out

    def label(self) -> str:
        """The one-line trace/explain label."""
        on = ", ".join(self._plan.common_names) or "x"
        return (
            f"grace hash join [build={self.build_side}, "
            f"budget={self._budget.rows}] on ({on})"
        )


class ReplanTriggered(Exception):
    """Raised by an :class:`AdaptiveGuard` whose observation crossed its
    threshold.

    The exception unwinds the whole executing operator cascade — every
    operator's ``finally`` releases its metered state on the way out — and
    is caught by the adaptive evaluator, which materialises a checkpoint,
    re-costs the remaining join order against observed sizes, and resumes
    on the revised plan (see ``EngineEvaluator``'s adaptive mode).
    """

    def __init__(self, guard: "AdaptiveGuard"):
        """Record the triggering ``guard`` (which knows its plan node)."""
        self.guard = guard
        super().__init__(
            f"observed {guard.rows_out} rows against an estimate of "
            f"{guard.est_rows:.1f} (threshold {guard.threshold:.1f})"
        )


class AdaptiveGuard(PhysicalOperator):
    """Pass-through operator watching an estimate against reality.

    The guard streams its child's blocks unchanged while counting rows; the
    moment the count exceeds ``max(factor × est_rows, min_rows)`` it raises
    :class:`ReplanTriggered` instead of yielding further — the mid-stream
    re-plan trigger of the adaptive evaluator.  A guard holds no state and
    meters nothing; with accurate estimates its cost is one counter
    comparison per block.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        meter: MemoryMeter,
        est_rows: float,
        factor: float,
        min_rows: int,
        node: Optional[object] = None,
    ):
        """Guard ``child`` against ``factor ×`` its estimated cardinality.

        ``node`` is the plan node the guarded operator was instantiated
        from — the re-planner uses it to locate the checkpoint boundary and
        the not-yet-joined operands.
        """
        super().__init__(meter)
        self._child = child
        self.scheme = child.scheme
        self.output_order = child.output_order
        self.est_rows = float(est_rows)
        self.threshold = max(float(est_rows) * factor, float(min_rows))
        self.node = node

    def children(self) -> Tuple[PhysicalOperator, ...]:
        """The guarded operator."""
        return (self._child,)

    def _blocks(self) -> Iterator[Block]:
        """Stream the child's blocks, raising once the threshold is crossed."""
        self.rows_out = 0
        threshold = self.threshold
        for block in self._child.blocks():
            self.rows_out += len(block)
            if self.rows_out > threshold:
                raise ReplanTriggered(self)
            yield block

    def label(self) -> str:
        """Label the guard with its threshold around the child's label."""
        return f"guard[<={self.threshold:.0f}]({self._child.label()})"


def _merge_key_picker(scheme, names: Tuple[str, ...]) -> Callable[[Row], Hashable]:
    index = scheme.index
    return make_key_picker(tuple(index[name] for name in names))


def _ordered_lt(a: Hashable, b: Hashable) -> bool:
    """A deterministic total preorder over arbitrary hashable key values.

    Native comparison is used only where it is known to be a *total* order
    — numbers across their tower (keeping ``2`` and ``2.0`` equivalent, as
    their hash/equality demands), same-type strings/bytes, and tuples
    element-wise — because merely catching ``TypeError`` is not enough:
    partially ordered types like ``frozenset`` answer ``<`` with ``False``
    in both directions without raising, which would make two independent
    sorts disagree.  Everything else orders by type name then ``repr``.
    (Boundary: equal values of an exotic type whose reprs differ would not
    group adjacently; hash join — the default — has no such restriction.)
    """
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a < b
    type_a, type_b = type(a), type(b)
    if type_a is type_b:
        if type_a is str or type_a is bytes:
            return a < b
        if type_a is tuple:
            for x, y in zip(a, b):
                if _ordered_lt(x, y):
                    return True
                if _ordered_lt(y, x):
                    return False
            return len(a) < len(b)
        return repr(a) < repr(b)
    return (type_a.__name__, repr(a)) < (type_b.__name__, repr(b))


class _OrderedKey:
    """Sort-key wrapper applying :func:`_ordered_lt`.

    Both :class:`Sort` and :class:`MergeJoin` order through this one
    wrapper, so the order a sort produces is exactly the order the merge's
    advance logic assumes.
    """

    __slots__ = ("value",)

    def __init__(self, value: Hashable):
        self.value = value

    def __lt__(self, other: "_OrderedKey") -> bool:
        return _ordered_lt(self.value, other.value)


class MergeJoin(PhysicalOperator):
    """Blocked merge join over inputs already sorted on the join key.

    Both inputs must deliver rows ordered on the common attributes (the
    planner only places a merge join under that invariant, inserting
    :class:`Sort` nodes when configured to).  Only the current key group of
    each side is buffered — the "block" of equal-key rows — so resident
    state is bounded by the largest key group, not the input.  The output
    inherits the key order.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        plan: JoinPlan,
        meter: MemoryMeter,
    ):
        super().__init__(meter)
        if not plan.common_names:
            raise ValueError("merge join requires at least one shared attribute")
        for side in (left, right):
            order = side.output_order or ()
            if tuple(order[: len(plan.common_names)]) != plan.common_names:
                raise ValueError(
                    f"merge join requires inputs sorted on {plan.common_names}, "
                    f"got order {order} from {side.label()}"
                )
        self._left = left
        self._right = right
        self._plan = plan
        self.scheme = plan.joined_scheme
        self.output_order = plan.common_names

    def children(self) -> Tuple[PhysicalOperator, ...]:
        """The input operators."""
        return (self._left, self._right)

    @staticmethod
    def _groups(
        rows: Iterator[Row], key_of: Callable[[Row], Hashable]
    ) -> Iterator[Tuple[Hashable, List[Row]]]:
        """Yield ``(key, rows)`` groups from a key-ordered row stream."""
        group: List[Row] = []
        group_key: Hashable = None
        for row in rows:
            key = key_of(row)
            if group and key != group_key:
                yield group_key, group
                group = []
            group_key = key
            group.append(row)
        if group:
            yield group_key, group

    def _blocks(self) -> Iterator[Block]:
        """Stream the output blocks (see the operator iterator contract)."""
        self.rows_out = 0
        plan = self._plan
        meter = self.meter
        left_groups = self._groups(iter(self._left), plan.left_key_of)
        right_groups = self._groups(iter(self._right), plan.right_key_of)
        extra_of = plan.right_extra_of
        buffered = 0
        out: Block = []
        try:
            left_entry = next(left_groups, None)
            right_entry = next(right_groups, None)
            while left_entry is not None and right_entry is not None:
                left_key, left_group = left_entry
                right_key, right_group = right_entry
                if left_key == right_key:
                    meter.release(buffered)
                    buffered = len(left_group) + len(right_group)
                    meter.acquire(buffered)
                    extras = [extra_of(right_values) for right_values in right_group]
                    for left_values in left_group:
                        out.extend(left_values + extra for extra in extras)
                        if len(out) >= BLOCK_ROWS:
                            self.rows_out += len(out)
                            yield out
                            out = []
                    left_entry = next(left_groups, None)
                    right_entry = next(right_groups, None)
                else:
                    # Keys are drawn from streams sorted by _OrderedKey;
                    # advance the smaller under that same order.
                    if _OrderedKey(left_key) < _OrderedKey(right_key):
                        left_entry = next(left_groups, None)
                    else:
                        right_entry = next(right_groups, None)
            if out:
                self.rows_out += len(out)
                yield out
        finally:
            meter.release(buffered)

    def label(self) -> str:
        """The one-line trace/explain label."""
        return f"merge join on ({', '.join(self._plan.common_names)})"


class Sort(PhysicalOperator):
    """Sort the input on a key (establishing an output order), spilling runs.

    Without a ``budget`` the whole input is resident while sorting — a sort
    is never free; the planner only pays for it when a downstream merge
    join (or an explicit request) wants the order.  With a ``budget`` the
    sort goes *external* the moment its buffer would overrun the shared
    meter: the buffer is sorted and flushed as a run to a spill file, the
    meter is released, and once the input is drained the runs are k-way
    merged (``heapq.merge``) back into a single ordered stream.  Only the
    run buffer is ever metered; the merge holds one row per run plus the
    spill files' small unmetered read-staging.

    Keys are ordered through :class:`_OrderedKey` (native comparison,
    per-pair ``(type, repr)`` fallback) on **both** paths — the in-memory
    ``list.sort`` and the external merge — so the order a sort produces is
    exactly the order :class:`MergeJoin` advances by, spilled or not.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        key_names: Tuple[str, ...],
        meter: MemoryMeter,
        budget: Optional[MemoryBudget] = None,
    ):
        super().__init__(meter)
        missing = [name for name in key_names if name not in child.scheme.name_set]
        if missing:
            raise ValueError(f"sort key attributes {missing} not in scheme {child.scheme}")
        self._child = child
        self._key_names = tuple(key_names)
        self._key_of = _merge_key_picker(child.scheme, self._key_names)
        self._budget = budget
        self.scheme = child.scheme
        self.output_order = self._key_names
        #: Number of runs this operator's most recent execution spilled
        #: (0 = the input fit the budget and sorted in memory).
        self.spilled = 0

    def children(self) -> Tuple[PhysicalOperator, ...]:
        """The input operators."""
        return (self._child,)

    def _blocks(self) -> Iterator[Block]:
        """Stream the output blocks (see the operator iterator contract)."""
        if self._budget is None:
            return self._blocks_in_memory()
        return self._blocks_external()

    def _blocks_in_memory(self) -> Iterator[Block]:
        self.rows_out = 0
        self.spilled = 0
        meter = self.meter
        rows: List[Row] = []
        resident = 0
        try:
            for block in self._child.blocks():
                rows.extend(block)
                meter.acquire(len(block))
                resident += len(block)
            key_of = self._key_of
            rows.sort(key=lambda row: _OrderedKey(key_of(row)))
            for start in range(0, len(rows), BLOCK_ROWS):
                block = rows[start : start + BLOCK_ROWS]
                self.rows_out += len(block)
                yield block
        finally:
            meter.release(resident)
            rows.clear()

    @staticmethod
    def _run_rows(run: SpillFile) -> Iterator[Row]:
        for block in run.blocks():
            for row in block:
                yield row

    def _blocks_external(self) -> Iterator[Block]:
        self.rows_out = 0
        self.spilled = 0
        meter = self.meter
        budget = self._budget
        key_of = self._key_of
        sort_key = lambda row: _OrderedKey(key_of(row))  # noqa: E731 - shared by both paths
        state = {"rows": [], "resident": 0, "dir": None}
        runs: List[SpillFile] = []

        def flush_run() -> None:
            rows = state["rows"]
            if not rows:
                return
            if state["dir"] is None:
                state["dir"] = _new_spill_dir("repro-sort-", budget.spill_dir)
                _COUNTERS.add(sort_spills=1)
                if meter.events is not None:
                    meter.events.emit(
                        "spill", operator="sort", rows=state["resident"]
                    )
            rows.sort(key=sort_key)
            run = SpillFile(
                os.path.join(state["dir"], f"run-{len(runs):06d}.spill"),
                faults=meter.faults,
                tracer=meter.tracer,
                events=meter.events,
            )
            for row in rows:
                run.append(row)
            run.finish()
            runs.append(run)
            self.spilled += 1
            meter.release(state["resident"])
            state["rows"] = []
            state["resident"] = 0

        try:
            for block in self._child.blocks():
                start = 0
                total = len(block)
                while start < total:
                    remaining = total - start
                    if meter.try_acquire(remaining):
                        state["rows"].extend(block[start:])
                        state["resident"] += remaining
                        break
                    head = meter.headroom() or 0
                    if head and meter.try_acquire(head):
                        state["rows"].extend(block[start : start + head])
                        state["resident"] += head
                        start += head
                    elif not state["rows"]:
                        # No headroom at all (other operators pin the shared
                        # meter): keep one row resident anyway so every
                        # flush makes progress instead of spinning.
                        meter.acquire(1)
                        state["rows"].append(block[start])
                        state["resident"] += 1
                        start += 1
                    flush_run()
            if not runs:
                rows = state["rows"]
                rows.sort(key=sort_key)
                for block_start in range(0, len(rows), BLOCK_ROWS):
                    block = rows[block_start : block_start + BLOCK_ROWS]
                    self.rows_out += len(block)
                    yield block
                return
            flush_run()
            merged = heapq.merge(*(self._run_rows(run) for run in runs), key=sort_key)
            out: Block = []
            append = out.append
            for row in merged:
                append(row)
                if len(out) >= BLOCK_ROWS:
                    self.rows_out += len(out)
                    yield out
                    out = []
                    append = out.append
            if out:
                self.rows_out += len(out)
                yield out
        finally:
            meter.release(state["resident"])
            state["rows"] = []
            for run in runs:
                run.delete()
            if state["dir"] is not None:
                _remove_spill_dir(state["dir"])

    def label(self) -> str:
        """The one-line trace/explain label."""
        suffix = f" [budget={self._budget.rows}]" if self._budget is not None else ""
        return f"sort by ({', '.join(self._key_names)}){suffix}"


def _align_pick(from_scheme, to_scheme) -> Optional[Callable[[Row], Row]]:
    """A picker realigning rows of ``from_scheme`` to ``to_scheme``'s order."""
    if from_scheme.names == to_scheme.names:
        return None
    from ..algebra.tuples import _project_plan

    return _project_plan(from_scheme, to_scheme).pick


class StreamingUnion(PhysicalOperator):
    """Set union: stream the left input, then unseen rows of the right.

    Resident state is the seen-set — one entry per output row, exactly the
    materialised union's size, but the output itself still streams.  With a
    ``budget`` the seen-set is a :class:`SpillingSeenSet`, so a union whose
    result outgrows the meter spills instead of overrunning it.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        meter: MemoryMeter,
        budget: Optional[MemoryBudget] = None,
    ):
        super().__init__(meter)
        if left.scheme != right.scheme:
            raise ValueError(
                f"union requires identical schemes: {left.scheme} vs {right.scheme}"
            )
        self._left = left
        self._right = right
        self._realign = _align_pick(right.scheme, left.scheme)
        self._budget = budget
        self.scheme = left.scheme

    def children(self) -> Tuple[PhysicalOperator, ...]:
        """The input operators."""
        return (self._left, self._right)

    def _blocks(self) -> Iterator[Block]:
        """Stream the output blocks (see the operator iterator contract)."""
        if self._budget is not None:
            return self._blocks_spilling()
        return self._blocks_in_memory()

    def _blocks_in_memory(self) -> Iterator[Block]:
        self.rows_out = 0
        meter = self.meter
        seen: Set[Row] = set()
        add = seen.add
        realign = self._realign
        try:
            for source, pick in ((self._left, None), (self._right, realign)):
                for block in source.blocks():
                    out: Block = []
                    append = out.append
                    before = len(seen)
                    for row in block:
                        if pick is not None:
                            row = pick(row)
                        if row not in seen:
                            add(row)
                            append(row)
                    meter.acquire(len(seen) - before)
                    if out:
                        self.rows_out += len(out)
                        yield out
        finally:
            meter.release(len(seen))
            seen.clear()

    def _blocks_spilling(self) -> Iterator[Block]:
        self.rows_out = 0
        seen = SpillingSeenSet(self.meter, self._budget, prefix="repro-union-")
        realign = self._realign
        try:
            for source, pick in ((self._left, None), (self._right, realign)):
                for block in source.blocks():
                    rows = [pick(row) for row in block] if pick is not None else block
                    out = seen.filter_block(rows)
                    if out:
                        self.rows_out += len(out)
                        yield out
            for out in seen.drain():
                self.rows_out += len(out)
                yield out
        finally:
            seen.close()

    def label(self) -> str:
        """The one-line trace/explain label."""
        return "union"


class StreamingDifference(PhysicalOperator):
    """Set difference: drain the right side into a set, stream the left.

    Resident state is the right input (plus a small dedup guard for left
    duplicates when the left child does not deduplicate).  With a ``budget``
    both sets unify into one :class:`SpillingSeenSet`: the right side is
    *noted* (marked seen, never emitted), the left side is then filtered —
    exactly the difference — and the whole structure spills on overflow.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        meter: MemoryMeter,
        budget: Optional[MemoryBudget] = None,
    ):
        super().__init__(meter)
        if left.scheme != right.scheme:
            raise ValueError(
                f"difference requires identical schemes: {left.scheme} vs {right.scheme}"
            )
        self._left = left
        self._right = right
        self._realign = _align_pick(right.scheme, left.scheme)
        self._budget = budget
        self.scheme = left.scheme

    def children(self) -> Tuple[PhysicalOperator, ...]:
        """The input operators."""
        return (self._left, self._right)

    def _blocks(self) -> Iterator[Block]:
        """Stream the output blocks (see the operator iterator contract)."""
        if self._budget is not None:
            return self._blocks_spilling()
        return self._blocks_in_memory()

    def _blocks_in_memory(self) -> Iterator[Block]:
        self.rows_out = 0
        meter = self.meter
        excluded: Set[Row] = set()
        emitted: Set[Row] = set()
        realign = self._realign
        try:
            for block in self._right.blocks():
                before = len(excluded)
                if realign is not None:
                    excluded.update(realign(row) for row in block)
                else:
                    excluded.update(block)
                meter.acquire(len(excluded) - before)
            for block in self._left.blocks():
                out: Block = []
                append = out.append
                before = len(emitted)
                for row in block:
                    if row not in excluded and row not in emitted:
                        emitted.add(row)
                        append(row)
                meter.acquire(len(emitted) - before)
                if out:
                    self.rows_out += len(out)
                    yield out
        finally:
            meter.release(len(excluded) + len(emitted))
            excluded.clear()
            emitted.clear()

    def _blocks_spilling(self) -> Iterator[Block]:
        self.rows_out = 0
        seen = SpillingSeenSet(self.meter, self._budget, prefix="repro-diff-")
        realign = self._realign
        try:
            for block in self._right.blocks():
                if realign is not None:
                    seen.note_block([realign(row) for row in block])
                else:
                    seen.note_block(block)
            for block in self._left.blocks():
                out = seen.filter_block(block)
                if out:
                    self.rows_out += len(out)
                    yield out
            for out in seen.drain():
                self.rows_out += len(out)
                yield out
        finally:
            seen.close()

    def label(self) -> str:
        """The one-line trace/explain label."""
        return "difference"
