"""The parallel probe stage: one pinned plan, a partitioned probe scan, a pool.

PR 2's pinned plans were designed so a multi-worker evaluator can execute one
plan concurrently; this module is that evaluator's engine room.  ``count``
workers each instantiate the *same* :class:`~repro.engine.planner.PhysicalPlan`
with ``probe_slice=(index, count)``: every build table, sort buffer, and
seen-set is built per worker from the full inputs, but the driving row source
(the leaf-most projection on the probe path, or the bare probe scan — see
:meth:`PlanNode.instantiate`) streams only the rows whose salted hash lands
on the worker's slice.  Probe rows flow through the operator cascade
independently, so the union of the workers' outputs is **set-equal** to the
serial execution.  Per-operator streamed cardinalities are aggregated
spine-aware by the evaluator: summed along the sliced probe spine (the
slices partition that stream), reported once for build-side subtrees that
every worker re-streams identically.

Two backends:

``fork``
    The default where :func:`os.fork` exists.  Workers are forked processes:
    the plan, bindings, and relations are inherited copy-on-write (nothing is
    pickled on the way in — compiled plan artifacts are closures and could
    not be), each worker runs its slice on its own core, and only the result
    rows, counter deltas, and per-operator cardinalities come back through a
    queue (so result *values* must be picklable; a worker that cannot pickle
    its rows reports the failure and the evaluator falls back to serial).
    Counter deltas are merged into this process's totals, and each worker
    meters against its own budget — a memory budget is per process.

``thread``
    Workers are threads sharing the caller's :class:`MemoryMeter` (which is
    why the meter takes a lock), so the budget and ``peak_live_rows`` cover
    the whole pool at once.  Under the GIL threads add no speed, but the
    backend is portable, cheap to spin up, and exercises the identical
    slicing/merging logic — the differential tests lean on it.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..perf.counters import kernel_counters
from .faults import FaultPlan, InjectedFaultError
from .physical import MemoryMeter, PhysicalOperator

__all__ = [
    "ForkProbePool",
    "ParallelExecutionError",
    "ParallelResult",
    "default_backend",
    "drain_metered",
    "execute_parallel",
    "operators_in_order",
]

_COUNTERS = kernel_counters()

#: Seconds between liveness checks while waiting for fork-worker results.
_POLL_SECONDS = 0.25


class ParallelExecutionError(RuntimeError):
    """A parallel execution could not complete (the caller should run serial)."""


@dataclass
class ParallelResult:
    """The merged outcome of one parallel plan execution."""

    rows: Set[tuple]
    #: Pool-wide peak of metered rows: the shared meter's peak (threads) or
    #: the sum of the per-process peaks (fork — the processes are concurrent,
    #: so their residencies add).
    peak_live_rows: int
    #: Largest hash-join build table resident in any single worker.
    build_peak_rows: int
    #: Per-operator streamed cardinalities summed across workers, in the
    #: same children-first order as :func:`operators_in_order`.  A faithful
    #: per-operator number only for the sliced probe spine; build-side
    #: subtrees stream identical data per worker — the evaluator's trace
    #: aggregation uses ``worker_step_rows`` plus the operator tree to
    #: report those once.
    step_rows: List[int]
    #: The raw per-worker step lists behind ``step_rows``.
    worker_step_rows: List[List[int]]
    workers: int
    backend: str


def operators_in_order(root: PhysicalOperator) -> List[PhysicalOperator]:
    """The operator tree children-first — the order traces record steps in."""
    ordered: List[PhysicalOperator] = []

    def visit(operator: PhysicalOperator) -> None:
        for child in operator.children():
            visit(child)
        ordered.append(operator)

    visit(root)
    return ordered


def default_backend() -> str:
    """``fork`` where available (real parallelism), ``thread`` elsewhere."""
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return "fork"
    except Exception:  # pragma: no cover - platform-dependent
        pass
    return "thread"


def drain_metered(root: PhysicalOperator, meter: MemoryMeter) -> Set[tuple]:
    """Drain an operator tree into a set, metering the accumulated rows.

    Mirrors the serial evaluator's accounting: the growing result set is
    resident alongside operator state, so ``meter.peak`` stays comparable
    between serial and parallel executions.
    """
    rows: Set[tuple] = set()
    update = rows.update
    size = 0
    for block in root.blocks():
        update(block)
        grown = len(rows)
        if grown != size:
            meter.acquire(grown - size)
            size = grown
    return rows


def _step_rows(root: PhysicalOperator) -> List[int]:
    return [operator.rows_out for operator in operators_in_order(root)]


def _build_peak(root: PhysicalOperator) -> int:
    return max(operator.build_peak_rows for operator in operators_in_order(root))


def _merge(
    per_worker: List[Tuple[Set[tuple], List[int], int]],
) -> Tuple[Set[tuple], List[int], List[List[int]], int]:
    rows: Set[tuple] = set()
    step_totals: Optional[List[int]] = None
    worker_steps: List[List[int]] = []
    build_peak = 0
    for worker_rows, steps, worker_build_peak in per_worker:
        rows |= worker_rows
        worker_steps.append(list(steps))
        if step_totals is None:
            step_totals = list(steps)
        else:
            step_totals = [a + b for a, b in zip(step_totals, steps)]
        if worker_build_peak > build_peak:
            build_peak = worker_build_peak
    return rows, step_totals or [], worker_steps, build_peak


# -- thread backend ----------------------------------------------------


def _run_threads(
    plan,
    bindings,
    meter: MemoryMeter,
    workers: int,
    faults: Optional[FaultPlan] = None,
) -> ParallelResult:
    outcomes: List[Optional[Tuple[Set[tuple], List[int], int]]] = [None] * workers
    errors: List[BaseException] = []

    def work(index: int) -> None:
        try:
            if faults is not None and faults.kill_worker == index:
                # The thread analogue of a worker death: the worker fails
                # mid-probe and the pool-level error handling must degrade
                # loudly (serial fallback), never return a partial result.
                _COUNTERS.add(fault_injected=1)
                if meter.events is not None:
                    meter.events.emit("fault", site="worker-kill", worker=index)
                raise InjectedFaultError(f"injected death of probe worker {index}")
            root = plan.executor(bindings, meter, probe_slice=(index, workers))
            rows = drain_metered(root, meter)
            outcomes[index] = (rows, _step_rows(root), _build_peak(root))
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)

    threads = [
        threading.Thread(target=work, args=(index,), name=f"engine-probe-{index}")
        for index in range(workers)
    ]
    started: List[threading.Thread] = []
    try:
        for thread in threads:
            thread.start()
            started.append(thread)
    except RuntimeError as exc:  # e.g. "can't start new thread"
        for thread in started:
            thread.join()
        raise ParallelExecutionError(f"could not start probe workers: {exc}")
    for thread in started:
        thread.join()
    if errors:
        # Any pool failure means "fall back to serial" (the documented
        # contract); a genuine operator bug reproduces on the serial run.
        raise ParallelExecutionError(
            f"parallel probe worker failed: {errors[0]!r}"
        ) from errors[0]
    rows, step_totals, worker_steps, build_peak = _merge(
        [o for o in outcomes if o is not None]
    )
    return ParallelResult(
        rows=rows,
        peak_live_rows=meter.peak,
        build_peak_rows=build_peak,
        step_rows=step_totals,
        worker_step_rows=worker_steps,
        workers=workers,
        backend="thread",
    )


# -- fork backend ------------------------------------------------------


def _pool_worker(
    plan, bindings, budget_rows, index, count, connection, faults=None
) -> None:
    """One pinned worker: serve ``run`` requests over a pipe until closed.

    Forked from the parent, so the plan and bindings are inherited
    copy-on-write; each request re-executes the worker's slice with a fresh
    meter and sends back only the outcome (rows, peaks, per-operator
    cardinalities, counter deltas).  Pickling the rows is the one thing
    that can fail for exotic values — the error is reported so the parent
    can fall back to serial.

    ``faults`` (a :class:`~repro.engine.faults.FaultPlan`) can schedule this
    worker's death: it hard-exits mid-probe without reporting — the real
    shape of an OOM kill — so the parent's liveness polling, pool rebuild,
    and serial fallback are exercised end to end.
    """
    try:
        while True:
            try:
                command = connection.recv()
            except EOFError:
                break
            if command != "run":
                break
            if faults is not None and faults.kill_worker == index:
                os._exit(1)  # no report, no cleanup: a genuine worker death
            try:
                counters = kernel_counters()
                before = counters.snapshot()
                meter = MemoryMeter(budget_rows)
                root = plan.executor(bindings, meter, probe_slice=(index, count))
                rows = drain_metered(root, meter)
                payload = (
                    "ok",
                    list(rows),
                    meter.peak,
                    _build_peak(root),
                    _step_rows(root),
                    counters.delta_since(before),
                )
                try:
                    connection.send(payload)
                except Exception as exc:  # e.g. unpicklable row values
                    connection.send(("error", f"{type(exc).__name__}: {exc}"))
            except BaseException as exc:
                connection.send(("error", f"{type(exc).__name__}: {exc}"))
    except BaseException:  # pragma: no cover - pipe torn down mid-send
        pass
    finally:
        connection.close()


class ForkProbePool:
    """A persistent pool of forked workers pinned to one (plan, bindings).

    Forking is the expensive part of the fork backend — the workers inherit
    the whole interpreter — so the pool forks **once** and re-executes its
    pinned plan on every :meth:`run`, which is what steady-state serving
    looks like (the evaluator caches one pool per bound plan).  Workers are
    daemons: an abandoned pool dies with the parent process; `close` is the
    polite path.
    """

    #: Seconds a worker may spend on one slice before the pool gives up.
    RUN_TIMEOUT = 300.0

    def __init__(
        self,
        plan,
        bindings: Mapping,
        workers: int,
        budget_rows: Optional[int],
        faults: Optional[FaultPlan] = None,
    ):
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - platform-dependent
            raise ParallelExecutionError(f"fork backend unavailable: {exc}")
        self.workers = workers
        self._connections = []
        self._processes = []
        try:
            for index in range(workers):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_pool_worker,
                    args=(plan, bindings, budget_rows, index, workers, child_end, faults),
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._connections.append(parent_end)
                self._processes.append(process)
        except BaseException:
            self.close()
            raise

    def run(self) -> ParallelResult:
        """Execute the pinned plan once across the pool and merge results."""
        for connection in self._connections:
            try:
                connection.send("run")
            except (OSError, ValueError) as exc:
                raise ParallelExecutionError(f"parallel probe worker gone: {exc}")
        per_worker: List[Tuple[Set[tuple], List[int], int]] = []
        peak_sum = 0
        counter_totals: Dict[str, int] = {}
        for index, connection in enumerate(self._connections):
            deadline = time.monotonic() + self.RUN_TIMEOUT
            while not connection.poll(_POLL_SECONDS):
                if not self._processes[index].is_alive() and not connection.poll(0):
                    raise ParallelExecutionError(
                        "a parallel probe worker exited without reporting"
                    )
                if time.monotonic() > deadline:
                    raise ParallelExecutionError("parallel probe worker timed out")
            try:
                payload = connection.recv()
            except (EOFError, OSError) as exc:
                raise ParallelExecutionError(f"parallel probe worker died: {exc}")
            if payload[0] != "ok":
                raise ParallelExecutionError(
                    f"parallel probe worker failed: {payload[1]}"
                )
            _, rows, peak, build_peak, steps, counter_delta = payload
            per_worker.append((set(rows), steps, build_peak))
            peak_sum += peak
            for name, amount in counter_delta.items():
                counter_totals[name] = counter_totals.get(name, 0) + amount
        # Fold the workers' counter activity into this process's totals so
        # traces and benchmarks see spills/probes wherever they happened.
        _COUNTERS.add(
            **{name: amount for name, amount in counter_totals.items() if amount}
        )
        rows, step_totals, worker_steps, build_peak = _merge(per_worker)
        return ParallelResult(
            rows=rows,
            peak_live_rows=peak_sum,
            build_peak_rows=build_peak,
            step_rows=step_totals,
            worker_step_rows=worker_steps,
            workers=self.workers,
            backend="fork",
        )

    def close(self) -> None:
        """Shut the workers down (idempotent; also safe mid-construction)."""
        for connection in self._connections:
            try:
                connection.send("stop")
            except (OSError, ValueError):
                pass
            connection.close()
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        self._connections = []
        self._processes = []


def execute_parallel(
    plan,
    bindings: Mapping,
    workers: int,
    meter: MemoryMeter,
    budget_rows: Optional[int] = None,
    backend: Optional[str] = None,
    pool: Optional[ForkProbePool] = None,
    faults: Optional[FaultPlan] = None,
) -> ParallelResult:
    """Execute ``plan`` with a ``workers``-way partitioned probe scan.

    ``pool`` reuses a persistent :class:`ForkProbePool` (the evaluator's
    steady-state path); without one, the fork backend pays a one-shot pool.
    ``faults`` schedules injected worker deaths (ignored for a reused
    ``pool``, which carries its own plan from construction).  Raises
    :class:`ParallelExecutionError` when the pool cannot deliver (fork
    unavailable, a worker died, result rows unpicklable) — the caller is
    expected to fall back to serial execution, which is always correct.
    """
    if workers < 2:
        raise ValueError("execute_parallel needs at least 2 workers")
    chosen = backend or default_backend()
    if chosen == "fork":
        if pool is not None:
            return pool.run()
        one_shot = ForkProbePool(plan, bindings, workers, budget_rows, faults=faults)
        try:
            return one_shot.run()
        finally:
            one_shot.close()
    if chosen == "thread":
        # The thread backend enforces the budget through the shared meter:
        # an explicit budget_rows takes effect there rather than being
        # silently dropped.
        if budget_rows is not None and meter.budget != budget_rows:
            meter.budget = budget_rows
        return _run_threads(plan, bindings, meter, workers, faults=faults)
    raise ValueError(f"unknown parallel backend {chosen!r}")
