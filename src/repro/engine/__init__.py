"""Streaming query-execution engine: statistics, physical operators, planner.

The engine is the production-facing execution layer on top of the positional
algebra kernel (PR 1):

``repro.engine.stats``
    Per-relation statistics catalog (cardinality, per-column distinct counts
    and bounds), cached on :meth:`repro.algebra.relation.Relation.stats`.
``repro.engine.physical``
    Iterator/generator physical operators — table scan (whole or one
    worker's partition slice), streaming projection with dedup, hash join
    with stats-chosen build side (budget-aware Grace-hash spilling to disk
    partitions when configured), blocked merge join for sorted inputs,
    union/difference — that stream blocks of raw positional rows without
    materialising intermediates, metering the rows resident in engine state
    against an optional :class:`MemoryBudget`.
``repro.engine.planner``
    A cost model lowering :mod:`repro.expressions.ast` trees into physical
    plans: memoised greedy join ordering, hash-vs-merge selection, build-side
    choice, budget-aware Grace lowering with partition-count estimates, with
    every compiled scheme-level artifact resolved at plan time.
``repro.engine.parallel``
    The parallel probe stage: fork/thread worker pools executing one pinned
    plan over a partitioned probe scan and merging set-equal results.
``repro.engine.sampling``
    Sampling-based cardinality estimation: reservoir samples over relation
    rows, sample-join size estimates with no cross-column independence
    assumption, GEE distinct-count scale-up, and the
    :class:`AdaptiveConfig` knobs for mid-stream re-planning
    (``EngineEvaluator(adaptive=…)``).
``repro.engine.planstore``
    Per-session planning memory (``EngineEvaluator(planstore=…)``): an
    identity-keyed LRU of warm reservoir samples, an observed-cardinality
    ledger consulted by plan costing before any estimator, re-pinning of
    the corrected join order after a mid-stream re-plan, and proactive
    drift re-planning when observations leave a pinned plan's estimates
    behind — the layer that turns the adaptive machinery into a learning
    optimizer.
``repro.engine.faults``
    Deterministic fault injection: :class:`FaultPlan` schedules spill I/O
    failures, worker kills, and checkpoint-cap pressure;
    :class:`FaultInjector` fires them per evaluation.  Every operator
    either recovers (bounded spill retries, pool rebuild, loud serial
    fallback) or raises a typed :class:`EngineFaultError` with full
    cleanup — never a silent wrong answer.
``repro.engine.evaluator``
    :class:`EngineEvaluator` — the streaming counterpart of
    :class:`~repro.expressions.optimizer.OptimizedEvaluator`, pinning one
    plan per expression and reporting ``peak_live_rows`` /
    ``peak_build_rows`` in its trace; ``budget=`` and ``workers=`` switch on
    the spill and parallel paths.

See ``docs/ENGINE.md`` for the operator contract and invariants.
"""

from .evaluator import EngineEvaluator
from .faults import EngineFaultError, FaultInjector, FaultPlan, InjectedFaultError
from .parallel import (
    ForkProbePool,
    ParallelExecutionError,
    ParallelResult,
    default_backend,
    execute_parallel,
)
from .physical import (
    BLOCK_ROWS,
    SPILL_BLOCK_ROWS,
    SPILL_IO_RETRIES,
    AdaptiveGuard,
    GraceHashJoin,
    HashJoin,
    MemoryBudget,
    MemoryMeter,
    MergeJoin,
    PartitionedScan,
    PhysicalOperator,
    ReplanTriggered,
    Sort,
    SpilledCheckpoint,
    SpillFile,
    SpillingSeenSet,
    StreamingDifference,
    StreamingProject,
    StreamingUnion,
    TableScan,
)
from .planner import PhysicalPlan, PlanNode, Planner, PlannerConfig, plan_expression
from .planstore import (
    CardinalityLedger,
    LedgerBackedStats,
    PlanRecord,
    PlanStore,
    PlanStoreConfig,
    SampleCache,
)
from .sampling import (
    AdaptiveConfig,
    Sample,
    SampledRelationStats,
    q_error,
    reservoir_sample,
    sampled_stats,
)
from .stats import (
    ColumnStats,
    RelationStats,
    estimate_join_cardinality,
    estimate_partition_count,
    estimate_spill_depth,
    join_estimate_provenance,
    join_stats,
    project_stats,
)

__all__ = [
    "EngineEvaluator",
    "EngineFaultError",
    "FaultInjector",
    "FaultPlan",
    "InjectedFaultError",
    "BLOCK_ROWS",
    "SPILL_BLOCK_ROWS",
    "SPILL_IO_RETRIES",
    "AdaptiveConfig",
    "AdaptiveGuard",
    "MemoryBudget",
    "MemoryMeter",
    "ReplanTriggered",
    "Sample",
    "SampledRelationStats",
    "SpilledCheckpoint",
    "SpillFile",
    "SpillingSeenSet",
    "PhysicalOperator",
    "TableScan",
    "PartitionedScan",
    "StreamingProject",
    "HashJoin",
    "GraceHashJoin",
    "MergeJoin",
    "Sort",
    "StreamingUnion",
    "StreamingDifference",
    "ForkProbePool",
    "ParallelExecutionError",
    "ParallelResult",
    "default_backend",
    "execute_parallel",
    "Planner",
    "PlannerConfig",
    "PlanNode",
    "PhysicalPlan",
    "plan_expression",
    "CardinalityLedger",
    "LedgerBackedStats",
    "PlanRecord",
    "PlanStore",
    "PlanStoreConfig",
    "SampleCache",
    "ColumnStats",
    "RelationStats",
    "estimate_join_cardinality",
    "estimate_partition_count",
    "estimate_spill_depth",
    "join_estimate_provenance",
    "join_stats",
    "project_stats",
    "q_error",
    "reservoir_sample",
    "sampled_stats",
]
