"""Streaming query-execution engine: statistics, physical operators, planner.

The engine is the production-facing execution layer on top of the positional
algebra kernel (PR 1):

``repro.engine.stats``
    Per-relation statistics catalog (cardinality, per-column distinct counts
    and bounds), cached on :meth:`repro.algebra.relation.Relation.stats`.
``repro.engine.physical``
    Iterator/generator physical operators — table scan, streaming projection
    with dedup, hash join with stats-chosen build side, blocked merge join
    for sorted inputs, union/difference — that stream blocks of raw
    positional rows without materialising intermediates, metering the rows
    resident in engine state.
``repro.engine.planner``
    A cost model lowering :mod:`repro.expressions.ast` trees into physical
    plans: memoised greedy join ordering, hash-vs-merge selection, build-side
    choice, with every compiled scheme-level artifact resolved at plan time.
``repro.engine.evaluator``
    :class:`EngineEvaluator` — the streaming counterpart of
    :class:`~repro.expressions.optimizer.OptimizedEvaluator`, pinning one
    plan per expression and reporting ``peak_live_rows`` in its trace.

See ``docs/ENGINE.md`` for the operator contract and invariants.
"""

from .evaluator import EngineEvaluator
from .physical import (
    BLOCK_ROWS,
    HashJoin,
    MemoryMeter,
    MergeJoin,
    PhysicalOperator,
    Sort,
    StreamingDifference,
    StreamingProject,
    StreamingUnion,
    TableScan,
)
from .planner import PhysicalPlan, PlanNode, Planner, PlannerConfig, plan_expression
from .stats import (
    ColumnStats,
    RelationStats,
    estimate_join_cardinality,
    join_stats,
    project_stats,
)

__all__ = [
    "EngineEvaluator",
    "BLOCK_ROWS",
    "MemoryMeter",
    "PhysicalOperator",
    "TableScan",
    "StreamingProject",
    "HashJoin",
    "MergeJoin",
    "Sort",
    "StreamingUnion",
    "StreamingDifference",
    "Planner",
    "PlannerConfig",
    "PlanNode",
    "PhysicalPlan",
    "plan_expression",
    "ColumnStats",
    "RelationStats",
    "estimate_join_cardinality",
    "join_stats",
    "project_stats",
]
