"""Per-evaluator planning memory: warm samples, observed truth, plan history.

Three small stores compose into the learning loop the adaptive evaluator
(:mod:`repro.engine.evaluator`) closes:

* :class:`SampleCache` — an LRU of reservoir-sample catalog entries keyed by
  relation *identity* (``(name, id(relation))``, strong references — the
  same discipline as the evaluator's fork-pool cache), so repeated plan
  builds over unchanged relations stop re-sampling (``sample_builds`` stops
  growing; hits and misses are counted in :mod:`repro.perf.counters`).
  Relations are immutable, so *rebinding is invalidation*: a replaced
  relation is a new object and its old cache entries can never be hit
  again; :meth:`SampleCache.invalidate_name` additionally drops the warm
  entries of one name eagerly (the serving facade's ``set_relation`` path).
* :class:`CardinalityLedger` — observed per-operator output cardinalities,
  keyed by the *set of base operands* a join subtree covers plus its
  output columns (so same-operand subtrees that compute different schemes
  never answer for each other).  The stats
  propagation (:func:`repro.engine.stats.estimate_join_cardinality` /
  :func:`~repro.engine.stats.join_stats`) consults the ledger through
  :class:`LedgerBackedStats` before falling back to sample joins or the
  backoff formula, so the second plan build of a query is costed against
  *measured* truth.  The ledger's ``version`` advances only when an
  observation materially changes, which is what makes the evaluator's
  pre-execution drift check O(1) in the steady state.
* :class:`PlanStore` — the facade owning both, plus a bounded per-expression
  history of plan events (``pinned`` / ``repin`` / ``drift_replan`` /
  ``forgotten``) surfaced by ``PreparedQuery.plan_history()`` and the
  ``repro plans`` CLI.

Nothing here executes queries: the evaluator harvests actuals into the
ledger after each serial execution and asks the store for samples during
plan builds; this module only remembers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ...perf.counters import kernel_counters
from ..sampling import SampledRelationStats, q_error

__all__ = [
    "CardinalityLedger",
    "LedgerBackedStats",
    "PlanRecord",
    "PlanStore",
    "PlanStoreConfig",
    "SampleCache",
]

#: A fresh observation must differ from the stored one by at least this
#: q-error to advance the ledger ``version`` — identical steady-state
#: re-observations must not force re-validation of every pinned plan.
_MATERIAL_CHANGE_QERROR = 1.2

#: A ledger entry's key: (base operand names, output column names).
LedgerKey = Tuple[FrozenSet[str], FrozenSet[str]]


@dataclass(frozen=True)
class PlanStoreConfig:
    """Knobs for the per-session plan & statistics store.

    ``max_samples``
        Warm reservoir-sample catalog entries kept per store (LRU beyond).
    ``max_observations``
        Observed-cardinality ledger entries kept per store (LRU beyond).
    ``drift_threshold``
        Pre-execution q-error between a pinned plan's estimates and the
        ledger's observed actuals at which the plan is proactively
        re-planned (``drift_replans``).  ``None`` disables drift checks.
    ``repin``
        Whether a successful mid-stream re-plan writes the revised join
        order back into the pinned plan (``plan_repins``) so steady-state
        executions run corrected with zero further replans.
    ``max_history``
        Plan events remembered per expression (oldest dropped beyond).
    """

    max_samples: int = 64
    max_observations: int = 4096
    drift_threshold: Optional[float] = 4.0
    repin: bool = True
    max_history: int = 32

    def __post_init__(self) -> None:
        """Validate the knobs (positive caps, threshold > 1)."""
        if self.max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {self.max_samples}")
        if self.max_observations < 1:
            raise ValueError(
                f"max_observations must be >= 1, got {self.max_observations}"
            )
        if self.drift_threshold is not None and self.drift_threshold <= 1.0:
            raise ValueError(
                f"drift_threshold must exceed 1, got {self.drift_threshold}"
            )
        if self.max_history < 1:
            raise ValueError(f"max_history must be >= 1, got {self.max_history}")

    @classmethod
    def coerce(
        cls, value: "PlanStoreConfig | bool | None"
    ) -> "Optional[PlanStoreConfig]":
        """Normalise ``True``/``False``/``None`` into a config (or ``None``)."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"planstore must be a PlanStoreConfig, True, False, or None, "
            f"got {type(value).__name__}"
        )


class SampleCache:
    """LRU of sampled catalog entries keyed by relation identity.

    Keys are ``(name, id(relation))`` and every entry keeps a strong
    reference to the keyed relation, so a live key's id cannot be recycled
    under us (the fork-pool cache's discipline).  Relations are immutable;
    a rebinding — even to an equal relation — is a new object and therefore
    a natural miss, which is exactly the invalidation the serving facade's
    version counters promise.
    """

    def __init__(self, max_samples: int = 64):
        """Create a cache holding at most ``max_samples`` warm entries."""
        self._entries: "OrderedDict[Tuple[str, int], Tuple[object, object]]" = (
            OrderedDict()
        )
        self._max = max(int(max_samples), 1)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        """How many warm entries the cache currently holds."""
        with self._lock:
            return len(self._entries)

    def get_or_build(
        self, name: str, relation, builder: Callable[[], object]
    ) -> object:
        """Return the cached entry for this exact relation, building on miss.

        Hits and misses are counted both on the cache and in the
        process-global kernel counters (``sample_cache_hits`` /
        ``sample_cache_misses``); a miss calls ``builder`` outside the
        cache lock (sampling is the expensive part) and stores the result.
        """
        key = (name, id(relation))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is not None:
            kernel_counters().add(sample_cache_hits=1)
            return entry[1]
        stats = builder()
        with self._lock:
            self.misses += 1
            self._entries[key] = (relation, stats)
            self._entries.move_to_end(key)
            while len(self._entries) > self._max:
                self._entries.popitem(last=False)
        kernel_counters().add(sample_cache_misses=1)
        return stats

    def invalidate_name(self, name: str) -> int:
        """Drop every warm entry of one relation name; returns the count."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == name]
            for key in stale:
                del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        """Drop every warm entry."""
        with self._lock:
            self._entries.clear()


class CardinalityLedger:
    """Observed join-output cardinalities, keyed by operand set + columns.

    Each entry maps an ``(operand names, output columns)`` pair — both
    frozensets — to the output cardinality actually streamed by a join
    subtree covering exactly those base relations (adaptive checkpoints
    translate back to the operands they materialised) and producing exactly
    that output scheme.  The column half of the key discriminates subtrees
    that read the same operands but compute different things: ``R ⋈ S``
    and ``R ⋈ project[B](S)`` both cover ``{R, S}`` yet have very
    different cardinalities, and conflating them would make the ledger
    oscillate (and re-plan) forever.  ``version`` advances only on
    *material* change (a new key, or a re-observation whose q-error
    against the stored value is at least ``1.2``), so consumers can cache
    "validated against version N" and re-check in O(1).
    """

    def __init__(self, max_observations: int = 4096):
        """Create a ledger holding at most ``max_observations`` entries."""
        self._observations: "OrderedDict[LedgerKey, int]" = OrderedDict()
        self._max = max(int(max_observations), 1)
        self._lock = threading.Lock()
        self.version = 0
        self.observed = 0

    def __len__(self) -> int:
        """How many (operand set, columns) pairs have an observation."""
        with self._lock:
            return len(self._observations)

    def observe(
        self, names: Iterable[str], columns: Iterable[str], actual: int
    ) -> bool:
        """Record one observed output cardinality; True if it changed things.

        Re-observations refresh LRU position either way; only material
        changes (new key, or q-error >= 1.2 vs the stored value) advance
        ``version`` — the steady state must not invalidate itself.
        """
        key = (frozenset(names), frozenset(columns))
        if not key[0]:
            return False
        actual = max(int(actual), 0)
        with self._lock:
            self.observed += 1
            previous = self._observations.get(key)
            self._observations[key] = actual
            self._observations.move_to_end(key)
            while len(self._observations) > self._max:
                self._observations.popitem(last=False)
            changed = (
                previous is None
                or q_error(previous, actual) >= _MATERIAL_CHANGE_QERROR
            )
            if changed:
                self.version += 1
            return changed

    def lookup(self, names: Iterable[str], columns: Iterable[str]) -> Optional[int]:
        """The observed cardinality for this exact (operands, columns) pair."""
        key = (frozenset(names), frozenset(columns))
        with self._lock:
            return self._observations.get(key)

    def invalidate_name(self, name: str) -> int:
        """Drop every observation involving one relation name.

        Returns the number of dropped entries; a non-zero drop advances
        ``version`` (plans validated against the old truth must re-check).
        """
        with self._lock:
            stale = [key for key in self._observations if name in key[0]]
            for key in stale:
                del self._observations[key]
            if stale:
                self.version += 1
        return len(stale)

    def invalidate_subsets(self, names: FrozenSet[str]) -> int:
        """Drop observations over subsets of ``names`` (one plan's operands).

        The ``forget_plan`` path: dropping a pinned plan also forgets what
        was learned executing it, so the next pin starts from samples.
        Returns the dropped count; non-zero drops advance ``version``.
        """
        with self._lock:
            stale = [key for key in self._observations if key[0] <= names]
            for key in stale:
                del self._observations[key]
            if stale:
                self.version += 1
        return len(stale)

    def clear(self) -> int:
        """Drop every observation (bare-relation rebinds touch every name).

        Returns the dropped count; non-zero drops advance ``version``.
        """
        with self._lock:
            dropped = len(self._observations)
            self._observations.clear()
            if dropped:
                self.version += 1
        return dropped

    def snapshot(self) -> "Dict[LedgerKey, int]":
        """The current observations as a plain dict (inspection/CLI)."""
        with self._lock:
            return dict(self._observations)


@dataclass(frozen=True)
class LedgerBackedStats(SampledRelationStats):
    """A catalog entry that consults the observed-cardinality ledger first.

    Subclasses :class:`~repro.engine.sampling.SampledRelationStats`, adding
    the ledger handle and the set of base operand ``names`` this entry
    covers.  The stats-propagation functions in :mod:`repro.engine.stats`
    stay import-free of this module: they duck-type the ``ledger`` /
    ``names`` attributes (exactly like the ``sample`` attribute) and call
    :meth:`rewrap` so derived entries keep both, letting every join
    estimate along a chain check for observed truth before estimating.
    """

    ledger: Optional[CardinalityLedger] = None
    names: FrozenSet[str] = frozenset()

    @classmethod
    def wrap(
        cls,
        stats,
        ledger: Optional[CardinalityLedger],
        names: Iterable[str],
    ) -> "LedgerBackedStats":
        """Wrap an existing catalog entry with a ledger handle and names."""
        return cls(
            cardinality=stats.cardinality,
            columns=stats.columns,
            sample=getattr(stats, "sample", None),
            ledger=ledger,
            names=frozenset(names),
        )

    def rewrap(self, derived, *parents) -> "LedgerBackedStats":
        """Re-attach ledger context to a derived (joined/projected) entry.

        Called by the stats-propagation functions with the freshly derived
        entry and the parent entries it came from.  The derived entry
        covers the union of the parents' operand names; when more than one
        parent contributed (a join) and the ledger holds an observation for
        that exact operand set, the observed cardinality **overrides** the
        estimate — measured truth beats any estimator.
        """
        names = frozenset().union(
            *(getattr(parent, "names", frozenset()) for parent in parents)
        )
        ledger = self.ledger
        if ledger is None:
            for parent in parents:
                ledger = getattr(parent, "ledger", None)
                if ledger is not None:
                    break
        cardinality = derived.cardinality
        if ledger is not None and len(parents) > 1:
            observed = ledger.lookup(names, frozenset(derived.columns))
            if observed is not None:
                cardinality = observed
        return LedgerBackedStats(
            cardinality=cardinality,
            columns=derived.columns,
            sample=getattr(derived, "sample", None),
            ledger=ledger,
            names=names,
        )


@dataclass(frozen=True)
class PlanRecord:
    """One event in a prepared query's plan history.

    ``kind`` is ``"pinned"`` (first build), ``"repin"`` (revised order
    written back after a successful mid-stream re-plan), ``"drift_replan"``
    (proactive rebuild after the ledger drifted from the pinned estimates),
    or ``"forgotten"`` (the plan was dropped).  ``join_order`` lists the
    operand names in the order the plan's scans appear (left-deep probe
    order); ``detail`` carries a human-readable note (trigger, q-error).
    """

    kind: str
    join_order: Tuple[str, ...] = ()
    detail: str = ""


class PlanStore:
    """The per-evaluator facade over samples, ledger, and plan history.

    One store backs one :class:`~repro.engine.evaluator.EngineEvaluator`
    (and through it one ``Session``): the evaluator asks
    :meth:`sample_for` during plan builds, feeds actuals through
    ``ledger.observe`` after executions, and records every pin / repin /
    drift re-plan so ``PreparedQuery.plan_history()`` and the ``repro
    plans`` CLI can explain what the optimizer learned.  All methods are
    thread-safe; the store itself never executes anything.
    """

    def __init__(self, config: "PlanStoreConfig | bool | None" = None):
        """Create a store from a config (``None``/``True`` mean defaults)."""
        self.config = PlanStoreConfig.coerce(config) or PlanStoreConfig()
        self.samples = SampleCache(self.config.max_samples)
        self.ledger = CardinalityLedger(self.config.max_observations)
        self._history: "Dict[object, List[PlanRecord]]" = {}
        self._history_lock = threading.Lock()
        self.repins = 0
        self.drift_replans = 0

    @classmethod
    def coerce(
        cls, value: "PlanStore | PlanStoreConfig | bool | None"
    ) -> "Optional[PlanStore]":
        """Normalise configs/flags into a store (or ``None`` when disabled)."""
        if value is None or value is False:
            return None
        if isinstance(value, cls):
            return value
        return cls(PlanStoreConfig.coerce(value))

    def sample_for(
        self, name: str, relation, builder: Callable[[], object]
    ) -> object:
        """The warm sampled entry for this exact relation (built on miss)."""
        return self.samples.get_or_build(name, relation, builder)

    def ledger_backed(self, stats, name: str) -> LedgerBackedStats:
        """Wrap one base catalog entry so plan costing consults the ledger."""
        return LedgerBackedStats.wrap(stats, self.ledger, (name,))

    def harvest(
        self, observations: Iterable[Tuple[FrozenSet[str], FrozenSet[str], int]]
    ) -> bool:
        """Feed observed (operands, columns, actual rows) triples into the ledger.

        Returns whether any observation materially changed the ledger —
        the signal the evaluator uses to decide if pinned plans need a
        drift re-check.
        """
        changed = False
        for names, columns, actual in observations:
            if self.ledger.observe(names, columns, actual):
                changed = True
        return changed

    def invalidate_relation(self, name: str) -> None:
        """Forget everything learned about one relation (``set_relation``).

        Drops the warm samples of that name and every ledger observation
        involving it — and nothing else: other relations' samples and
        observations stay warm, which is the "changed relation only"
        contract the stale-stats regression tests pin.
        """
        self.samples.invalidate_name(name)
        self.ledger.invalidate_name(name)

    def invalidate_all(self) -> None:
        """Forget everything learned about every relation.

        The bare-relation rebind path (``Session.set_default_relation``):
        the default relation binds *any* operand name, so no per-name
        invalidation can be scoped — drop all warm samples and the whole
        ledger.  Plan histories are kept; they record events, not truth.
        """
        self.samples.clear()
        self.ledger.clear()

    def record(
        self,
        expression,
        kind: str,
        join_order: Tuple[str, ...] = (),
        detail: str = "",
    ) -> PlanRecord:
        """Append one event to an expression's plan history (bounded)."""
        record = PlanRecord(kind=kind, join_order=tuple(join_order), detail=detail)
        with self._history_lock:
            history = self._history.setdefault(expression, [])
            history.append(record)
            del history[: -self.config.max_history]
        return record

    def history(self, expression) -> Tuple[PlanRecord, ...]:
        """The recorded plan events of one expression, oldest first."""
        with self._history_lock:
            return tuple(self._history.get(expression, ()))

    def histories(self) -> Dict[object, Tuple[PlanRecord, ...]]:
        """Every expression's history (the ``repro plans`` CLI view)."""
        with self._history_lock:
            return {
                expression: tuple(records)
                for expression, records in self._history.items()
            }

    def forget_expression(
        self, expression, operand_names: Optional[FrozenSet[str]] = None
    ) -> None:
        """Drop one expression's learned state (the ``forget_plan`` path).

        Records a ``forgotten`` event, then drops the ledger observations
        covering subsets of the plan's operands — the next pin of this (or
        an overlapping) expression starts from fresh samples rather than
        stale observed truth.  Warm samples are left alone here: they are
        keyed by relation identity and stay valid until the relation
        itself is replaced (:meth:`invalidate_relation`).
        """
        self.record(expression, "forgotten")
        if operand_names:
            self.ledger.invalidate_subsets(frozenset(operand_names))

    def stats(self) -> Dict[str, int]:
        """Counters and sizes for ``Session.stats()`` / the CLI."""
        return {
            "sample_cache_hits": self.samples.hits,
            "sample_cache_misses": self.samples.misses,
            "cached_samples": len(self.samples),
            "ledger_entries": len(self.ledger),
            "ledger_version": self.ledger.version,
            "plan_repins": self.repins,
            "drift_replans": self.drift_replans,
        }
