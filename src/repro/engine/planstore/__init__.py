"""Plan-management subsystem: per-session planning memory that learns.

The adaptive machinery of :mod:`repro.engine.sampling` made a single
execution self-correcting; this package makes the correction *stick*.  A
:class:`PlanStore` owns three kinds of memory for one evaluator/session:

* warm reservoir samples per relation identity (:class:`SampleCache`), so
  repeated plan builds over unchanged relations stop re-sampling;
* an observed-cardinality ledger (:class:`CardinalityLedger`), harvested
  from executed operator trees and consulted by the stats propagation
  (through :class:`LedgerBackedStats`) before any estimator runs;
* a bounded plan history per expression (:class:`PlanRecord`), recording
  every pin, repin, drift re-plan, and forget.

The evaluator (``EngineEvaluator(planstore=...)``) re-pins the revised join
order after a successful mid-stream re-plan and proactively re-plans before
execution when the ledger drifts from a pinned plan's estimates — see
``docs/ENGINE.md`` for the lifecycle and ``repro plans`` for a live tour.
"""

from .store import (
    CardinalityLedger,
    LedgerBackedStats,
    PlanRecord,
    PlanStore,
    PlanStoreConfig,
    SampleCache,
)

__all__ = [
    "CardinalityLedger",
    "LedgerBackedStats",
    "PlanRecord",
    "PlanStore",
    "PlanStoreConfig",
    "SampleCache",
]
