"""The streaming query evaluator: pinned plans, bounded live rows, budgets.

:class:`EngineEvaluator` sits alongside the materialising evaluators of
:mod:`repro.expressions` with the same ``evaluate(expression, arguments) ->
(relation, trace)`` contract, but it executes a cost-based *physical plan*
(:mod:`repro.engine.planner`) of streaming operators
(:mod:`repro.engine.physical`) instead of materialising every intermediate
relation.  On the paper's blow-up constructions this bounds peak memory by
the *inputs* (hash-table build sides, dedup sets) while the naive regime's
peak grows exponentially — the trace's ``peak_live_rows`` field makes the
difference measurable against the materialising evaluators'
``peak_intermediate_cardinality``.

Two execution knobs extend the PR 2 engine:

* ``budget`` (row count or :class:`~repro.engine.physical.MemoryBudget`)
  caps the rows resident in engine state.  Hash joins lower to
  :class:`~repro.engine.physical.GraceHashJoin` nodes that spill their
  build side to disk partitions when the meter would overflow, recursing on
  oversized partitions — the output stays set-equal, the spill activity is
  visible in ``trace.kernel_activity`` (``join_spills``, ``spill_rows``,
  ...), and ``trace.peak_build_rows`` reports the largest build table that
  was actually resident.
* ``workers`` partitions the plan's driving probe scan across a worker
  pool (:mod:`repro.engine.parallel`), executing one pinned plan
  concurrently.  The merged output is set-equal to serial execution; if
  the pool cannot deliver (fork unavailable, unpicklable rows, a dead
  worker) the fork backend rebuilds the pool once (``pool_recoveries``),
  and beyond that evaluation falls back to serial — always correct, and
  never silent: the fallback is counted (``serial_fallbacks``), warned
  (``RuntimeWarning``), and recorded on the trace's ``degradations``.

Plans are **pinned per expression**: the first evaluation plans against the
bound relations' statistics catalog and stores the plan (with every compiled
join/projection artifact resolved) in a per-evaluator dictionary keyed by the
expression, so repeated evaluation neither re-plans nor touches the
process-global LRU plan caches.  Pinning is lock-guarded, so one evaluator
may be shared by concurrent threads (each evaluation still gets its own
meter and operator tree).  Call :meth:`EngineEvaluator.clear_plans` (or use
a fresh evaluator) after the data distribution shifts enough that a replan
is worth it; a pinned plan stays *correct* for any conforming database
either way.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..algebra.relation import Relation
from ..algebra.tuples import _project_plan
from ..expressions.ast import Expression
from ..expressions.evaluator import (
    ArgumentLike,
    EvaluationTrace,
    TraceStep,
    bind_arguments,
)
from ..perf.counters import kernel_counters
from .faults import FaultInjector, FaultPlan
from ..obs.config import Observer, ObserveConfig
from ..obs.metrics import DEFAULT_QERROR_BUCKETS
from .parallel import (
    ForkProbePool,
    ParallelExecutionError,
    default_backend,
    drain_metered,
    execute_parallel,
    operators_in_order,
)
from .physical import (
    AdaptiveGuard,
    HashJoin,
    MemoryBudget,
    MemoryMeter,
    MergeJoin,
    PartitionedScan,
    PhysicalOperator,
    ReplanTriggered,
    SpilledCheckpoint,
    TableScan,
)
from .planner import PhysicalPlan, PlanNode, Planner, PlannerConfig
from .planstore import LedgerBackedStats, PlanStore
from .sampling import AdaptiveConfig, q_error, sampled_stats
from .stats import join_stats, project_stats

__all__ = ["EngineEvaluator"]

_NODE_KINDS = {
    "TableScan": "operand",
    "PartitionedScan": "operand",
    "StreamingProject": "projection",
    "HashJoin": "join",
    "GraceHashJoin": "join",
    "MergeJoin": "join",
    "Sort": "sort",
    "StreamingUnion": "union",
    "StreamingDifference": "difference",
    "AdaptiveGuard": "guard",
}


class EngineEvaluator:
    """Evaluate projection-join expressions on the streaming engine."""

    def __init__(
        self,
        config: Optional[PlannerConfig] = None,
        pin_plans: bool = True,
        budget: "MemoryBudget | int | None" = None,
        workers: Optional[int] = None,
        parallel_backend: Optional[str] = None,
        max_pools: int = 1,
        adaptive: "AdaptiveConfig | bool | None" = None,
        faults: Optional[FaultPlan] = None,
        observe: "Observer | ObserveConfig | bool | None" = None,
        planstore: "PlanStore | bool | None" = None,
    ):
        """Create an evaluator.

        ``config`` tunes the planner (merge-join preference, build-side
        dedup elision, and — when set there — budget/workers);
        ``pin_plans=False`` re-plans on every call, which the benchmarks use
        to isolate planning cost.  ``budget`` and ``workers`` override the
        config's fields: a row budget triggers Grace-hash spilling, a worker
        count > 1 enables the parallel probe stage.  ``parallel_backend``
        forces ``"fork"`` or ``"thread"`` (default: fork where available).
        ``max_pools`` caps the persistent fork-probe pools kept warm at
        once (one per bound plan, LRU-evicted beyond the cap) — a serving
        session raises it so mixed query traffic does not thrash re-forks.

        ``adaptive`` (``True`` or an
        :class:`~repro.engine.sampling.AdaptiveConfig`) switches on
        sampling-based cardinality estimation — plans are costed against
        reservoir samples of the bound relations instead of backed-off
        selectivities — plus **mid-stream re-planning**: serial executions
        run with :class:`~repro.engine.physical.AdaptiveGuard` operators on
        the join chain, and an observed cardinality exceeding its estimate
        by ``replan_factor`` checkpoints the accumulated intermediate,
        re-costs the remaining join order against the observed sizes, and
        resumes on the revised plan (``trace.replans`` counts it).
        Parallel executions use the sampled-statistics plan but never
        re-plan mid-stream (the pool pins one plan per fork).

        ``faults`` is an optional
        :class:`~repro.engine.faults.FaultPlan`: each evaluation then runs
        with a fresh deterministic
        :class:`~repro.engine.faults.FaultInjector` that fails spill I/O,
        kills parallel workers, or forces checkpoint-cap pressure at the
        scheduled points — the chaos harness for the engine's recovery
        contracts.

        ``observe`` (an :class:`~repro.obs.ObserveConfig`, an existing
        :class:`~repro.obs.Observer`, or ``True``) attaches the
        observability layer: span tracing per evaluation (surfaced on
        the trace's ``spans``), a structured event log of every spill /
        re-plan / degradation / injected fault, and a metrics registry.
        Tracing is pay-for-what-you-use — with ``observe=None`` (the
        default) or ``trace=False`` the hot path sees no tracer at all.

        ``planstore`` (``True``, a
        :class:`~repro.engine.planstore.PlanStoreConfig`, or an existing
        :class:`~repro.engine.planstore.PlanStore`) attaches the
        plan-management layer: warm reservoir samples per relation
        identity (plan builds over unchanged relations stop re-sampling),
        an observed-cardinality ledger harvested after every serial
        execution and consulted by plan costing before any estimator, a
        re-pin of the revised join order after a successful mid-stream
        re-plan (``plan_repin``), and a pre-execution drift check that
        proactively re-plans when the ledger's accumulated q-errors
        against a pinned plan's estimates cross the configured threshold
        (``drift_replan``).
        """
        base = config or PlannerConfig()
        coerced = MemoryBudget.coerce(budget)
        if coerced is not None:
            base = replace(base, budget=coerced)
        if workers is not None:
            base = replace(base, workers=max(int(workers), 1))
        self.config = base
        self.adaptive = AdaptiveConfig.coerce(adaptive)
        if faults is not None and not isinstance(faults, FaultPlan):
            raise TypeError(f"faults must be a FaultPlan or None, got {faults!r}")
        self.faults = faults
        self.observer = Observer.coerce(observe)
        self.planstore = PlanStore.coerce(planstore)
        self._planner = Planner(base)
        self._pin_plans = pin_plans
        self._plans: Dict[Expression, PhysicalPlan] = {}
        self._plans_lock = threading.Lock()
        self._parallel_backend = parallel_backend
        # Persistent fork pools, one per bound plan, LRU-capped: forking is
        # the fork backend's fixed cost, so repeated evaluation of a bound
        # plan — the serving steady state — forks once and re-runs its
        # pool.  Keys carry object ids, but every entry keeps strong
        # references to the keyed plan and relations, so a live key's ids
        # cannot be recycled under us.
        self._pools: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._max_pools = max(int(max_pools), 1)
        self._pool_lock = threading.Lock()

    def close(self) -> None:
        """Shut down every persistent worker pool.  Idempotent."""
        with self._pool_lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for entry in pools:
            entry[-1].close()

    @property
    def open_pools(self) -> int:
        """How many persistent fork-probe pools are currently warm."""
        with self._pool_lock:
            return len(self._pools)

    def __del__(self):  # pragma: no cover - interpreter-dependent timing
        try:
            self.close()
        except Exception:
            pass

    @staticmethod
    def _pool_key(
        plan: PhysicalPlan,
        bound: Mapping[str, Relation],
        workers: int,
        budget_rows: Optional[int],
    ) -> tuple:
        """The identity of one *bound* plan: plan object + exact relations.

        Identity (not equality) is deliberate: relations are immutable, so
        the same objects mean a pool's forked children hold inherited copies
        that are still the truth; any rebinding — even to an equal relation
        — must fork a fresh pool.  Entries keep strong references to the
        keyed objects, so a live key's ids cannot be recycled.
        """
        return (
            id(plan),
            workers,
            budget_rows,
            tuple(sorted((name, id(relation)) for name, relation in bound.items())),
        )

    def _pool_for(
        self,
        plan: PhysicalPlan,
        bound: Mapping[str, Relation],
        workers: int,
        budget_rows: Optional[int],
        faults: Optional[FaultPlan] = None,
    ) -> ForkProbePool:
        """The cached pool for this exact bound plan, forked on first use.

        Pools are keyed per bound plan (see :meth:`_pool_key`) and kept in
        LRU order with at most ``max_pools`` warm: serving mixed query
        traffic keeps each query's pool alive between its executions, while
        plan churn beyond the cap closes the coldest pool instead of leaking
        its forked children.  ``faults`` is only threaded into a *freshly*
        forked pool (a cached pool keeps the injection state it was born
        with — rebuilding after an injected death must not re-inject).
        """
        key = self._pool_key(plan, bound, workers, budget_rows)
        entry = self._pools.get(key)
        if entry is not None:
            self._pools.move_to_end(key)
            return entry[-1]
        pool = ForkProbePool(plan, dict(bound), workers, budget_rows, faults=faults)
        self._pools[key] = (plan, tuple(bound.items()), workers, budget_rows, pool)
        while len(self._pools) > self._max_pools:
            _, evicted = self._pools.popitem(last=False)
            evicted[-1].close()
        return pool

    def _drop_pool(
        self,
        plan: PhysicalPlan,
        bound: Mapping[str, Relation],
        workers: int,
        budget_rows: Optional[int],
    ) -> None:
        """Close and forget the pool for one bound plan (after a failure)."""
        key = self._pool_key(plan, bound, workers, budget_rows)
        entry = self._pools.pop(key, None)
        if entry is not None:
            entry[-1].close()

    def plan_for(self, expression: Expression, arguments: ArgumentLike) -> PhysicalPlan:
        """Return the (pinned) physical plan for ``expression``.

        The plan is built from the bound relations' statistics on first use
        and reused verbatim afterwards.  Pinning is race-free: concurrent
        first calls may both compute a candidate, but exactly one is stored
        and returned to everyone.

        With a plan store attached, a pinned hit additionally passes the
        **drift check**: when the observed-cardinality ledger has moved
        past the plan's estimates by more than the configured q-error
        threshold, the plan is rebuilt against current (ledger-backed)
        statistics *before* execution rather than correcting mid-stream
        (``drift_replans``).  The check is O(1) in the steady state — a
        plan validated against ledger version N re-checks only when the
        ledger materially changes.
        """
        if self._pin_plans:
            plan = self._plans.get(expression)
            if plan is not None:
                if self.planstore is not None:
                    plan = self._drift_check(expression, plan, arguments)
                return plan
        bound = bind_arguments(expression, arguments)
        stats = self._catalog_for(bound)
        if not self._pin_plans:
            return self._planner.plan(expression, stats)
        with self._plans_lock:
            plan = self._plans.get(expression)
            if plan is None:
                plan = self._planner.plan(expression, stats)
                self._plans[expression] = plan
                pinned = True
            else:
                pinned = False
        if pinned and self.planstore is not None:
            plan._ledger_version = self.planstore.ledger.version
            self.planstore.record(expression, "pinned", self._scan_order(plan.root))
        return plan

    def _catalog_for(self, bound: Mapping[str, Relation]) -> Dict[str, object]:
        """One catalog entry per bound operand: exact, or sampled (adaptive).

        Adaptive mode samples the *current* relations every time a plan is
        built, so an invalidation replan (the serving facade's
        ``forget_plan``) re-samples the fresh relations rather than reusing
        estimates from data that no longer exists.  A plan store keeps that
        contract while eliding the re-sampling cost: samples are cached per
        relation *identity*, so an unchanged relation hits its warm sample
        (``sample_cache_hits``) and a rebound one — a new object — misses
        and re-samples.  Ledger-backed wrapping makes every entry consult
        the observed-cardinality ledger during plan costing.
        """
        adaptive = self.adaptive
        store = self.planstore
        if adaptive is None:
            entries = {name: relation.stats() for name, relation in bound.items()}
        elif store is None:
            entries = {
                name: self._sample_entry(name, relation)
                for name, relation in bound.items()
            }
        else:
            entries = {
                name: store.sample_for(
                    name,
                    relation,
                    lambda name=name, relation=relation: self._sample_entry(
                        name, relation
                    ),
                )
                for name, relation in bound.items()
            }
        if store is None:
            return entries
        return {
            name: store.ledger_backed(entry, name)
            for name, entry in entries.items()
        }

    def _sample_entry(self, name: str, relation: Relation):
        """Build one sampled catalog entry under the adaptive config."""
        adaptive = self.adaptive
        return sampled_stats(
            relation,
            adaptive.sample_size,
            seed=adaptive.seed,
            name=name,
            join_cap=adaptive.sample_join_cap,
        )

    def pinned_plan(self, expression: Expression) -> Optional[PhysicalPlan]:
        """The currently pinned plan for ``expression``, if any (no build).

        Unlike :meth:`plan_for` this never plans and never drift-checks —
        it is the introspection hook (``engine-explain``, plan-history
        tooling) for seeing exactly what the next execution would reuse,
        including a re-pinned plan that replaced the originally compiled
        artifact.
        """
        with self._plans_lock:
            return self._plans.get(expression)

    def clear_plans(self) -> None:
        """Drop every pinned plan (e.g. after a data-distribution shift)."""
        with self._plans_lock:
            self._plans.clear()

    def forget_plan(
        self, expression: Expression, forget_learned: bool = True
    ) -> None:
        """Drop one expression's pinned plan so its next use re-plans.

        The serving facade calls this when a relation the expression reads
        is replaced: the fresh relation carries a fresh statistics catalog
        (construction is invalidation), so the next :meth:`plan_for` plans
        against the new distribution.  Warm pools keyed by the dropped plan
        are closed eagerly — their keys could never be hit again, so left
        in the LRU they would strand forked children (and a full copy of
        the replaced relations) until enough *other* plans churned them
        out.

        A plan store forgets alongside: the expression's plan history
        records the drop, and with ``forget_learned`` (the default) the
        ledger observations over this plan's operand sets are invalidated
        too, so the next pin starts from fresh samples instead of learned
        truth.  The facade's *invalidation-replan* path passes
        ``forget_learned=False``: there the changed relation's learned
        state was already dropped — scoped — by
        :meth:`~repro.engine.planstore.PlanStore.invalidate_relation`, and
        wiping this plan's whole operand set would destroy observations
        over *unchanged* relations that other queries still rely on.
        """
        with self._plans_lock:
            plan = self._plans.pop(expression, None)
        if plan is None:
            return
        self._evict_pools_for(plan)
        if self.planstore is not None:
            names = (
                frozenset(self._scan_names(plan.root)) if forget_learned else None
            )
            self.planstore.forget_expression(expression, names)

    def _evict_pools_for(self, plan: PhysicalPlan) -> None:
        """Close and drop every warm pool keyed by one (dropped) plan."""
        with self._pool_lock:
            stale = [
                key for key, entry in self._pools.items() if entry[0] is plan
            ]
            evicted = [self._pools.pop(key) for key in stale]
        for entry in evicted:
            entry[-1].close()

    def _effective_workers(
        self, plan: PhysicalPlan, bound: Mapping[str, Relation]
    ) -> int:
        """Degrade the configured parallelism for plans it cannot help.

        Parallelism slices the driving probe scan, so it needs one, with at
        least one row per worker — tiny inputs run serial rather than paying
        the pool spin-up for empty slices.
        """
        workers = self.config.workers
        if workers <= 1:
            return 1
        name = plan.driving_scan_name()
        if name is None:
            return 1
        if len(bound[name]) < workers:
            return 1
        return workers

    def evaluate(
        self,
        expression: Expression,
        arguments: ArgumentLike,
        tracer: Optional[object] = None,
    ) -> Tuple[Relation, EvaluationTrace]:
        """Evaluate and return ``(result, trace)``.

        The trace's ``steps`` record each physical operator's *streamed*
        output cardinality (nothing was materialised; under parallel
        execution they are summed across workers); ``peak_live_rows``
        reports the high-water mark of rows resident in engine state, and
        ``peak_build_rows`` the largest single hash-join build table.

        ``tracer`` optionally forces span tracing for this one call (the
        ``explain_analyze`` path); by default a tracer is minted per
        evaluation only when the evaluator was built with an ``observe``
        config that enables tracing.  When a tracer runs, the finished
        span tree is surfaced on the trace's ``spans``.
        """
        observer = self.observer
        if tracer is None and observer is not None:
            tracer = observer.tracer()
        events = observer.events if observer is not None else None
        if tracer is None or not tracer.enabled:
            return self._evaluate(expression, arguments, None, events)
        with tracer.span("execute", "evaluate"):
            result, trace = self._evaluate(expression, arguments, tracer, events)
        trace.spans = tracer.finish()
        return result, trace

    def _evaluate(
        self,
        expression: Expression,
        arguments: ArgumentLike,
        tracer: Optional[object],
        events: Optional[object],
    ) -> Tuple[Relation, EvaluationTrace]:
        bound = bind_arguments(expression, arguments)
        if tracer is not None:
            with tracer.span("plan", "plan_for"):
                plan = self.plan_for(expression, bound)
        else:
            plan = self.plan_for(expression, bound)
        trace = EvaluationTrace()
        trace.input_cardinality = sum(len(relation) for relation in bound.values())
        counters = kernel_counters()
        before = counters.snapshot()

        budget = self.config.budget
        budget_rows = budget.rows if budget is not None else None
        faults = self.faults
        injector = (
            FaultInjector(faults, events=events)
            if faults is not None and faults.injects_anything
            else None
        )
        meter = MemoryMeter(
            budget_rows, faults=injector, tracer=tracer, events=events
        )
        workers = self._effective_workers(plan, bound)
        parallel = None
        root = None
        if workers > 1:
            backend = self._parallel_backend or default_backend()
            if tracer is not None:
                with tracer.span("parallel", backend):
                    parallel, meter = self._execute_parallel(
                        plan, bound, workers, budget_rows, backend, meter,
                        injector, trace, counters,
                    )
            else:
                parallel, meter = self._execute_parallel(
                    plan, bound, workers, budget_rows, backend, meter, injector,
                    trace, counters,
                )

        if parallel is not None:
            rows: Set[Tuple] = parallel.rows
            result = Relation._from_trusted(plan.root.scheme, frozenset(rows))
            self._record_parallel_steps(plan, bound, parallel, trace)
            # Workers metered their result accumulation themselves (see
            # parallel._drain), so their peaks are comparable with the
            # serial path's state+result accounting.
            trace.peak_live_rows = max(parallel.peak_live_rows, meter.peak)
            trace.peak_build_rows = parallel.build_peak_rows
        elif self.adaptive is not None:
            (
                rows,
                root,
                replans,
                aborted_build_peak,
                checkpoint_names,
            ) = self._adaptive_execute(plan, bound, meter)
            # A revised chain may present the same result scheme in a
            # different column order; the drained rows align with the final
            # attempt's root, not the pinned plan's.
            result = Relation._from_trusted(root.scheme, frozenset(rows))
            self._record_steps(root, trace)
            trace.replans = replans
            trace.peak_live_rows = meter.peak
            # Build tables of attempts aborted by a re-plan were just as
            # resident as the final attempt's.
            trace.peak_build_rows = max(
                aborted_build_peak,
                max(
                    operator.build_peak_rows
                    for operator in operators_in_order(root)
                ),
            )
            self._record_q_errors(root, counters)
            if self.planstore is not None:
                self._harvest(root, checkpoint_names)
                if replans and self._pin_plans and self.planstore.config.repin:
                    self._repin(expression, plan, bound, replans, events)
        else:
            root = plan.executor(bound, meter)
            if tracer is not None:
                with tracer.span("materialize", "drain") as span:
                    rows = drain_metered(root, meter)
                    span.rows = len(rows)
            else:
                rows = drain_metered(root, meter)
            result = Relation._from_trusted(root.scheme, frozenset(rows))
            self._record_steps(root, trace)
            trace.peak_live_rows = meter.peak
            trace.peak_build_rows = max(
                operator.build_peak_rows for operator in operators_in_order(root)
            )
            if self.planstore is not None:
                self._harvest(root, None)

        trace.kernel_activity = counters.delta_since(before)
        trace.result_cardinality = len(result)
        observer = self.observer
        if observer is not None and observer.metrics is not None and root is not None:
            self._observe_q_errors(observer.metrics, root)
        return result, trace

    @staticmethod
    def _observe_q_errors(metrics, root: PhysicalOperator) -> None:
        """Feed per-operator q-errors into the observer's histogram.

        The counter-based mean/max in :mod:`repro.perf.counters` stays the
        always-on cheap signal; this histogram adds per-window p50/p95
        when an observer with metrics is attached.
        """
        histogram = metrics.histogram(
            "repro_qerror",
            DEFAULT_QERROR_BUCKETS,
            help="per-operator cardinality estimate q-error",
        )
        for operator in operators_in_order(root):
            if isinstance(operator, AdaptiveGuard):
                continue
            histogram.observe(q_error(operator.est_rows, operator.rows_out))

    def _execute_parallel(
        self,
        plan: PhysicalPlan,
        bound: Mapping[str, Relation],
        workers: int,
        budget_rows: Optional[int],
        backend: str,
        meter: MemoryMeter,
        injector: Optional[FaultInjector],
        trace: EvaluationTrace,
        counters,
    ):
        """Run the parallel probe stage, recovering or degrading *loudly*.

        Returns ``(parallel_result_or_None, meter)``.  On the fork backend a
        failed pool is dropped and rebuilt exactly once — a worker death is
        usually a process-level accident (OOM kill, injected fault), and a
        fresh fork of the same pinned plan recovers it
        (``pool_recoveries``).  If the rebuilt pool fails too, or the thread
        backend fails at all, execution degrades to serial — always
        correct, but never silent: the ``serial_fallbacks`` counter records
        it, a ``RuntimeWarning`` names the exception, and the trace carries
        a degradation event that :class:`repro.api.trace.UnifiedTrace` and
        ``Session.stats()`` surface.
        """
        rebuilt = False
        while True:
            try:
                if backend == "fork":
                    # Serialised on the pool lock: each pool is one pinned
                    # set of workers, not a queue (concurrent fork-backend
                    # evaluations take turns; the thread backend does not).
                    with self._pool_lock:
                        pool = self._pool_for(
                            plan,
                            bound,
                            workers,
                            budget_rows,
                            # A rebuilt pool must not re-inject the worker
                            # kill that just destroyed its predecessor.
                            faults=None if rebuilt else self.faults,
                        )
                        result = pool.run()
                else:
                    result = execute_parallel(
                        plan,
                        bound,
                        workers,
                        meter,
                        budget_rows=budget_rows,
                        backend=backend,
                        faults=None if rebuilt else self.faults,
                    )
                if rebuilt:
                    counters.add(pool_recoveries=1)
                return result, meter
            except (ParallelExecutionError, OSError) as error:
                # OSError covers fork itself failing (EAGAIN/ENOMEM under
                # pressure — exactly the regime a budgeted engine targets).
                if backend == "fork":
                    with self._pool_lock:
                        self._drop_pool(plan, bound, workers, budget_rows)
                    if not rebuilt:
                        rebuilt = True
                        if meter.events is not None:
                            meter.events.emit(
                                "pool-rebuild",
                                backend=backend,
                                error=f"{type(error).__name__}: {error}",
                            )
                        continue
                counters.add(serial_fallbacks=1)
                reason = f"{type(error).__name__}: {error}"
                trace.serial_fallbacks += 1
                trace.degradations.append(f"serial-fallback: {reason}")
                if meter.events is not None:
                    meter.events.emit(
                        "serial-fallback", backend=backend, reason=reason
                    )
                warnings.warn(
                    f"parallel execution degraded to serial ({reason})",
                    RuntimeWarning,
                    stacklevel=4,
                )
                # An aborted thread-backend attempt may have left its
                # acquisitions on the meter; the serial run gets a fresh one
                # so phantom rows cannot eat the budget or inflate the peak.
                return None, MemoryMeter(
                    budget_rows,
                    faults=injector,
                    tracer=meter.tracer,
                    events=meter.events,
                )

    # -- adaptive execution (sampled stats + mid-stream re-planning) ----

    @staticmethod
    def _spine(root: PlanNode) -> "Tuple[List[PlanNode], List[PlanNode]]":
        """Split a plan into its projection stack and hash-join chain.

        Returns ``(stack, chain)``: the projection/sort nodes above the top
        join (outermost first) and the left-deep hash-join chain below it
        (top join first, following the probe side down).  ``chain`` is
        empty when the plan has no hash-join spine to guard (single scans,
        merge-join plans under ``prefer_merge``).
        """
        stack: List[PlanNode] = []
        node = root
        while node.kind in ("project", "sort") and node.children:
            stack.append(node)
            node = node.children[0]
        if node.kind != "hash-join":
            return stack, []
        chain: List[PlanNode] = []
        while True:
            chain.append(node)
            probe = node.children[node.probe_child_index()]
            if probe.kind != "hash-join":
                return stack, chain
            node = probe

    def _guard_hook(self, plan: PhysicalPlan):
        """The ``guard_for`` callback wrapping this plan's chain joins."""
        adaptive = self.adaptive
        _, chain = self._spine(plan.root)
        if not chain:
            return None
        chain_ids = {id(node) for node in chain}

        def guard_for(
            node: PlanNode, operator: PhysicalOperator
        ) -> Optional[PhysicalOperator]:
            if id(node) not in chain_ids:
                return None
            return AdaptiveGuard(
                operator,
                operator.meter,
                est_rows=node.est_rows,
                factor=adaptive.replan_factor,
                min_rows=adaptive.replan_min_rows,
                node=node,
            )

        return guard_for

    def _adaptive_execute(
        self,
        plan: PhysicalPlan,
        bound: Mapping[str, Relation],
        meter: MemoryMeter,
    ) -> "Tuple[Set[Tuple], PhysicalOperator, int, int, Dict[str, frozenset]]":
        """Run ``plan`` serially with re-plan guards.

        Returns ``(rows, final_root, replans, aborted_build_peak,
        checkpoint_names)`` — the drained result rows, the operator tree of
        the completing attempt, the number of mid-stream re-plans, the
        largest hash-join build table resident during any *aborted* attempt
        (the final attempt's peaks are read off ``final_root`` by the
        caller), and the mapping from ``__checkpoint_N__`` binding names to
        the base operand sets they materialised (the plan store's ledger
        harvest translates through it).

        Guarded executions raise
        :class:`~repro.engine.physical.ReplanTriggered` when an operator's
        observed cardinality crosses its threshold; the handler materialises
        the accumulated chain up to the triggering join as a **checkpoint**
        relation (metered while it lives), re-costs the remaining join
        order against the checkpoint's exact statistics plus fresh samples
        of the current bindings, and re-executes on the revised plan — the
        checkpoint scan replaces the already-joined prefix, so that work is
        never redone.  After ``max_replans`` re-plans (or a checkpoint
        exceeding its row cap) the current plan runs to completion
        unguarded, which is always correct.
        """
        adaptive = self.adaptive
        counters = kernel_counters()
        current = plan
        checkpoints: Dict[str, object] = {}
        checkpoint_names: Dict[str, frozenset] = {}
        replans = 0
        aborted_build_peak = 0
        give_up = False
        try:
            while True:
                bindings = dict(bound)
                bindings.update(checkpoints)
                guard_for = None
                if not give_up and replans < adaptive.max_replans:
                    guard_for = self._guard_hook(current)
                root = current.executor(bindings, meter, guard_for=guard_for)
                rows: Set[Tuple] = set()
                size = 0
                tracer = meter.tracer
                try:
                    if tracer is not None and tracer.enabled:
                        with tracer.span("materialize", "drain") as span:
                            for block in root.blocks():
                                rows.update(block)
                                grown = len(rows)
                                if grown != size:
                                    meter.acquire(grown - size)
                                    size = grown
                            span.rows = size
                    else:
                        for block in root.blocks():
                            rows.update(block)
                            grown = len(rows)
                            if grown != size:
                                meter.acquire(grown - size)
                                size = grown
                    return rows, root, replans, aborted_build_peak, checkpoint_names
                except ReplanTriggered as trigger:
                    # Partial result rows are discarded (the revised plan
                    # re-derives them); release their metered residency.
                    # Build tables resident during this aborted attempt
                    # still count towards the evaluation's build peak.
                    meter.release(size)
                    aborted_build_peak = max(
                        aborted_build_peak,
                        max(
                            operator.build_peak_rows
                            for operator in operators_in_order(root)
                        ),
                    )
                    trigger_label = (
                        trigger.guard.node.kind
                        if trigger.guard.node is not None
                        else "unknown"
                    )
                    if tracer is not None and tracer.enabled:
                        with tracer.span("replan", trigger_label):
                            revised = self._revise_plan(
                                current, trigger.guard.node, bindings, checkpoints,
                                meter, checkpoint_names,
                            )
                    else:
                        revised = self._revise_plan(
                            current, trigger.guard.node, bindings, checkpoints,
                            meter, checkpoint_names,
                        )
                    if revised is None:
                        give_up = True
                        counters.add(adaptive_giveups=1)
                        if meter.events is not None:
                            meter.events.emit(
                                "degradation",
                                what="adaptive-giveup",
                                trigger=trigger_label,
                                replans=replans,
                            )
                        continue
                    current = revised
                    replans += 1
                    counters.add(adaptive_replans=1)
                    if meter.events is not None:
                        meter.events.emit(
                            "replan", trigger=trigger_label, attempt=replans
                        )
        finally:
            for ckpt in checkpoints.values():
                if isinstance(ckpt, SpilledCheckpoint):
                    ckpt.close()  # on disk, never metered
                else:
                    meter.release(len(ckpt))

    def _revise_plan(
        self,
        plan: PhysicalPlan,
        trigger_node: Optional[PlanNode],
        bindings: Mapping[str, Relation],
        checkpoints: Dict[str, object],
        meter: MemoryMeter,
        checkpoint_names: Optional[Dict[str, frozenset]] = None,
    ) -> Optional[PhysicalPlan]:
        """Checkpoint at the triggering join and re-cost the remaining order.

        Returns the revised plan, or ``None`` when the re-plan cannot be
        carried out (trigger outside the current chain, or — unbudgeted —
        a checkpoint past its row cap) — the caller then completes the
        current plan unguarded.  On success the materialised checkpoint is
        added to ``checkpoints`` under a fresh ``__checkpoint_N__`` binding
        that the revised plan's chain starts from: in metered memory when
        it fits the budget and the row cap, and as a disk-backed
        :class:`~repro.engine.physical.SpilledCheckpoint` otherwise
        (``checkpoint_spills``) — under a budget, cap pressure spills
        instead of giving up or overrunning the meter.
        """
        adaptive = self.adaptive
        budget = self.config.budget
        cap = adaptive.checkpoint_cap_rows
        if self.faults is not None and self.faults.checkpoint_cap_rows is not None:
            cap = self.faults.checkpoint_cap_rows
            kernel_counters().add(fault_injected=1)
            if meter.events is not None:
                meter.events.emit("fault", site="checkpoint-cap", cap=cap)
        stack, chain = self._spine(plan.root)
        if trigger_node is None or all(node is not trigger_node for node in chain):
            return None
        parts: List[PlanNode] = []
        for node in chain:
            parts.append(node.children[1 - node.probe_child_index()])
            if node is trigger_node:
                break
        probe_node = trigger_node.children[trigger_node.probe_child_index()]
        tracer = meter.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span("checkpoint", "materialize-prefix") as span:
                rows = self._materialize(
                    probe_node, bindings, meter, None if budget is not None else cap
                )
                span.rows = len(rows) if rows is not None else 0
        else:
            rows = self._materialize(
                probe_node, bindings, meter, None if budget is not None else cap
            )
        if rows is None:
            return None
        name = f"__checkpoint_{len(checkpoints) + 1}__"
        if budget is not None and (len(rows) > cap or not meter.try_acquire(len(rows))):
            spilled = SpilledCheckpoint(
                probe_node.scheme, name, budget, faults=meter.faults
            )
            for row in rows:
                spilled.append(row)
            spilled.finish()
            kernel_counters().add(checkpoint_spills=1)
            if meter.events is not None:
                meter.events.emit("checkpoint-spill", name=name, rows=len(rows))
            checkpoint: object = spilled
        else:
            if budget is None:
                meter.acquire(len(rows))
            checkpoint = Relation._from_trusted(probe_node.scheme, frozenset(rows))
        checkpoints[name] = checkpoint
        if meter.events is not None:
            meter.events.emit(
                "checkpoint",
                name=name,
                rows=len(rows),
                spilled=isinstance(checkpoint, SpilledCheckpoint),
            )
        checkpoint_stats = sampled_stats(
            checkpoint,
            adaptive.sample_size,
            seed=adaptive.seed,
            name=name,
            join_cap=adaptive.sample_join_cap,
        )
        store = self.planstore
        if store is not None:
            # The checkpoint *measured* the prefix join's true size — feed
            # it to the ledger under the base operand set it covers (earlier
            # checkpoints translate through), and keep the checkpoint's
            # catalog entry ledger-backed so the re-ordering below sees
            # observed truth for every candidate involving the prefix.
            translation = checkpoint_names if checkpoint_names is not None else {}
            prefix_names = frozenset().union(
                *(
                    translation.get(scan, frozenset((scan,)))
                    for scan in self._scan_names(probe_node)
                )
            )
            if checkpoint_names is not None:
                checkpoint_names[name] = prefix_names
            store.ledger.observe(
                prefix_names, frozenset(probe_node.scheme.names), len(rows)
            )
            checkpoint_stats = LedgerBackedStats.wrap(
                checkpoint_stats, store.ledger, prefix_names
            )
        checkpoint_node = PlanNode(
            kind="scan",
            scheme=checkpoint.scheme,
            stats=checkpoint_stats,
            cost=float(len(checkpoint)),
            operand_name=name,
        )
        base_stats = self._catalog_for(
            {
                op_name: bindings[op_name]
                for part in parts
                for op_name in self._scan_names(part)
            }
        )
        refreshed = [self._refresh_node_stats(part, base_stats) for part in parts]
        node = self._planner.order_join_nodes([checkpoint_node] + refreshed)
        for projection in reversed(stack):
            node = self._reproject(projection, node)
        return PhysicalPlan(root=node, expression=plan.expression, config=self.config)

    @staticmethod
    def _scan_names(node: PlanNode) -> Set[str]:
        """Operand names read by a plan subtree."""
        if node.kind == "scan":
            return {node.operand_name}
        names: Set[str] = set()
        for child in node.children:
            names |= EngineEvaluator._scan_names(child)
        return names

    @staticmethod
    def _scan_order(node: PlanNode) -> Tuple[str, ...]:
        """Operand names in plan order (left-deep, reading order) — the
        join-order fingerprint the plan store's history records."""
        if node.kind == "scan":
            return (node.operand_name,)
        order: Tuple[str, ...] = ()
        for child in node.children:
            order += EngineEvaluator._scan_order(child)
        return order

    # -- plan store integration (ledger harvest, re-pin, drift check) ----

    @staticmethod
    def _operator_scan_names(operator: PhysicalOperator) -> Set[str]:
        """Relation names read by an executed operator subtree."""
        if isinstance(operator, (TableScan, PartitionedScan)):
            return {operator._name}
        names: Set[str] = set()
        for child in operator.children():
            names |= EngineEvaluator._operator_scan_names(child)
        return names

    def _harvest(
        self,
        root: PhysicalOperator,
        checkpoint_names: "Optional[Dict[str, frozenset]]",
    ) -> None:
        """Feed the executed tree's per-join actuals into the ledger.

        Every completed hash/merge join contributes its streamed output
        cardinality under the set of base operands its subtree covered
        (checkpoint scans translate back through ``checkpoint_names``), so
        the next plan build — of this query or any query over the same
        operand sets — is costed against measured truth.
        """
        store = self.planstore
        if store is None:
            return
        translation = checkpoint_names or {}
        observations = []
        for operator in operators_in_order(root):
            if not isinstance(operator, (HashJoin, MergeJoin)):
                continue
            names = frozenset().union(
                *(
                    translation.get(scan, frozenset((scan,)))
                    for scan in self._operator_scan_names(operator)
                )
            )
            observations.append(
                (names, frozenset(operator.scheme.names), operator.rows_out)
            )
        store.harvest(observations)

    def _repin(
        self,
        expression: Expression,
        old_plan: PhysicalPlan,
        bound: Mapping[str, Relation],
        replans: int,
        events: Optional[object],
    ) -> None:
        """Write the corrected join order back into the pinned plan.

        After a successful mid-stream re-plan the ledger knows the true
        prefix and output cardinalities, so re-planning the expression
        against ledger-backed statistics reproduces the corrected order —
        as a *clean* plan over the base operands (no checkpoint scans),
        which is what gets pinned.  Steady-state executions then run the
        corrected plan with zero further replans (``plan_repins``; the
        ``plan_repin`` event and metric record it).
        """
        store = self.planstore
        revised = self._planner.plan(expression, self._catalog_for(bound))
        with self._plans_lock:
            if self._plans.get(expression) is not old_plan:
                return  # somebody else already re-pinned or forgot it
            self._plans[expression] = revised
        self._evict_pools_for(old_plan)
        revised._ledger_version = store.ledger.version
        store.repins += 1
        kernel_counters().add(plan_repins=1)
        order = self._scan_order(revised.root)
        store.record(
            expression,
            "repin",
            order,
            detail=f"after {replans} mid-stream re-plan(s)",
        )
        if events is not None:
            events.emit("plan_repin", order=list(order), replans=replans)
        observer = self.observer
        if observer is not None and observer.metrics is not None:
            observer.metrics.counter(
                "repro_plan_repins_total",
                help="pinned plans rewritten with a corrected join order",
            ).inc()

    def _drift_check(
        self,
        expression: Expression,
        plan: PhysicalPlan,
        arguments: ArgumentLike,
    ) -> PhysicalPlan:
        """Re-plan *before* execution when the ledger drifted past the plan.

        Compares each chain join's estimated cardinality against the
        ledger's observed actual for the same operand set; a q-error at or
        above ``drift_threshold`` rebuilds the plan against current
        (ledger-backed) statistics (``drift_replans``; ``drift_replan``
        event + metric).  Plans are stamped with the ledger version they
        were validated against, so the steady state pays one integer
        comparison.
        """
        store = self.planstore
        threshold = store.config.drift_threshold
        if threshold is None:
            return plan
        ledger = store.ledger
        version = ledger.version
        if getattr(plan, "_ledger_version", None) == version:
            return plan
        drift = 1.0
        worst = ""
        for node in self._join_nodes(plan.root):
            names = frozenset(self._scan_names(node))
            observed = ledger.lookup(names, frozenset(node.scheme.names))
            if observed is None:
                continue
            q = q_error(node.est_rows, observed)
            if q > drift:
                drift = q
                worst = (
                    f"{sorted(names)} est {node.est_rows:.0f}"
                    f" vs observed {observed}"
                )
        if drift < threshold:
            plan._ledger_version = version
            return plan
        bound = bind_arguments(expression, arguments)
        revised = self._planner.plan(expression, self._catalog_for(bound))
        with self._plans_lock:
            if self._plans.get(expression) is not plan:
                return self._plans.get(expression, revised)
            self._plans[expression] = revised
        self._evict_pools_for(plan)
        revised._ledger_version = ledger.version
        store.drift_replans += 1
        kernel_counters().add(drift_replans=1)
        order = self._scan_order(revised.root)
        store.record(
            expression,
            "drift_replan",
            order,
            detail=f"q-error {drift:.1f} ({worst})",
        )
        observer = self.observer
        if observer is not None:
            if observer.events is not None:
                observer.events.emit(
                    "drift_replan", q_error=round(drift, 2), order=list(order)
                )
            if observer.metrics is not None:
                observer.metrics.counter(
                    "repro_drift_replans_total",
                    help="pinned plans proactively re-planned on ledger drift",
                ).inc()
        return revised

    @staticmethod
    def _join_nodes(node: PlanNode) -> "List[PlanNode]":
        """Every join node of a plan subtree (any order)."""
        found: List[PlanNode] = []
        if node.kind in ("hash-join", "merge-join"):
            found.append(node)
        for child in node.children:
            found.extend(EngineEvaluator._join_nodes(child))
        return found

    @staticmethod
    def _materialize(
        node: PlanNode,
        bindings: Mapping[str, Relation],
        meter: MemoryMeter,
        cap: Optional[int],
    ) -> "Optional[Set[Tuple]]":
        """Drain a plan subtree into a row set (metered), or ``None`` past ``cap``.

        ``cap=None`` never aborts — the budgeted checkpoint path drains the
        whole subtree and decides afterwards whether the result lives in
        metered memory or spills to disk; the rows are metered only while
        this drain is in flight.
        """
        root = node.instantiate(bindings, meter)
        rows: Set[Tuple] = set()
        size = 0
        blocks = root.blocks()
        try:
            for block in blocks:
                rows.update(block)
                grown = len(rows)
                if cap is not None and grown > cap:
                    blocks.close()
                    return None
                if grown != size:
                    meter.acquire(grown - size)
                    size = grown
            return rows
        finally:
            # The caller re-acquires the checkpoint relation's residency.
            meter.release(size)

    def _refresh_node_stats(
        self, node: PlanNode, base_stats: Mapping[str, object]
    ) -> PlanNode:
        """Re-propagate a subtree's statistics from fresh base-relation entries.

        The pinned plan's node statistics reflect the relations it was
        planned against; after a mid-stream trigger the re-ordering must
        score the *current* bindings, so scans pick up freshly sampled
        entries and every derived node re-propagates.  Compiled picks and
        join plans are scheme-level artifacts and are reused untouched.
        """
        if node.kind == "scan":
            entry = base_stats.get(node.operand_name)
            if entry is None:
                return node
            return replace(node, stats=entry, cost=float(entry.cardinality))
        children = tuple(
            self._refresh_node_stats(child, base_stats) for child in node.children
        )
        if node.kind == "project":
            child = children[0]
            out_stats = project_stats(child.stats, node.scheme.names)
            cost = child.cost + child.est_rows + out_stats.cardinality
            return replace(node, stats=out_stats, cost=cost, children=children)
        if node.kind in ("hash-join", "merge-join"):
            out_stats = join_stats(
                children[0].stats,
                children[1].stats,
                node.scheme.names,
                node.join_plan.common_names,
            )
            return replace(node, stats=out_stats, children=children)
        if node.kind == "sort":
            return replace(node, stats=children[0].stats, children=children)
        return node

    @staticmethod
    def _reproject(projection: PlanNode, child: PlanNode) -> PlanNode:
        """Re-apply one projection of the original stack over a revised chain.

        The revised chain presents the same attributes in a (possibly)
        different column order, so the projection's pick list is recompiled
        against the new child scheme; target scheme and dedup behaviour are
        inherited from the original node.
        """
        pick_plan = _project_plan(child.scheme, projection.scheme)
        out_stats = project_stats(child.stats, pick_plan.target_scheme.names)
        cost = child.cost + child.est_rows + out_stats.cardinality
        return PlanNode(
            kind="project",
            scheme=pick_plan.target_scheme,
            stats=out_stats,
            cost=cost,
            children=(child,),
            pick=pick_plan.pick,
            dedup=projection.dedup,
        )

    @staticmethod
    def _record_q_errors(root: PhysicalOperator, counters) -> None:
        """Feed per-operator estimate-vs-observed q-errors into the counters.

        Guards are skipped (their estimate duplicates the operator they
        wrap); every other operator contributes one observation per
        evaluation, so the counters' mean/max q-error track the estimator's
        live accuracy (``qerror_*`` in :mod:`repro.perf.counters`).
        """
        for operator in operators_in_order(root):
            if isinstance(operator, AdaptiveGuard):
                continue
            counters.record_q_error(q_error(operator.est_rows, operator.rows_out))

    @staticmethod
    def _record_steps(root: PhysicalOperator, trace: EvaluationTrace) -> None:
        """Record per-operator streamed cardinalities, children first.

        Adaptive guards are pass-throughs — recording them would count every
        guarded join's cardinality twice and inflate
        ``total_intermediate_tuples`` against a static run of the same plan.
        """
        for operator in operators_in_order(root):
            if isinstance(operator, AdaptiveGuard):
                continue
            width = len(operator.scheme)
            trace.record(
                TraceStep(
                    description=operator.label(),
                    node_kind=_NODE_KINDS.get(type(operator).__name__, "operator"),
                    cardinality=operator.rows_out,
                    scheme_width=width,
                    cell_count=operator.rows_out * width,
                )
            )

    @staticmethod
    def _record_parallel_steps(
        plan: PhysicalPlan,
        bound: Mapping[str, Relation],
        parallel,
        trace: EvaluationTrace,
    ) -> None:
        """Record per-operator cardinalities against a template tree.

        Every worker instantiates the same plan, so the trees are identical
        in shape and traversal order; a never-executed template provides the
        labels while the workers' ``rows_out`` provide the counts.  Counts
        are combined **spine-aware**: operators on the sliced probe spine
        (the slice consumer and its ancestors) see partitioned data, so
        their per-worker counts sum to the true streamed total; every other
        operator (build-side subtrees, scans under the driving projection)
        re-streams identical full data in each worker and is reported once
        (the max).  Dedup operators on the spine can still count a row in
        two workers' streams — the documented set-equal caveat.

        The (label, kind, width, on-spine) tuples are invariant per plan
        shape, so they are computed once and cached on the plan — the
        steady-state serving path must not rebuild an operator tree per
        evaluation.  The shape varies only with the bindings' scheme
        *presentation* (a reordered presentation adds a realignment wrapper
        over its scan), so the cache key is the workers count plus each
        operand's presented column order.
        """
        cache = getattr(plan, "_parallel_step_meta", None)
        if cache is None:
            cache = {}
            plan._parallel_step_meta = cache
        key = (
            parallel.workers,
            tuple(
                sorted(
                    (name, relation.scheme.names) for name, relation in bound.items()
                )
            ),
        )
        meta = cache.get(key)
        if meta is None:
            template = plan.executor(
                bound, MemoryMeter(), probe_slice=(0, parallel.workers)
            )
            operators = operators_in_order(template)
            spine = EngineEvaluator._slice_spine(template)
            meta = [
                (
                    operator.label(),
                    _NODE_KINDS.get(type(operator).__name__, "operator"),
                    len(operator.scheme),
                    id(operator) in spine,
                )
                for operator in operators
            ]
            if len(meta) == len(parallel.step_rows):
                cache[key] = meta
        for position, (description, node_kind, width, on_spine) in enumerate(meta):
            per_worker = [steps[position] for steps in parallel.worker_step_rows]
            rows_out = sum(per_worker) if on_spine else max(per_worker, default=0)
            trace.record(
                TraceStep(
                    description=description,
                    node_kind=node_kind,
                    cardinality=rows_out,
                    scheme_width=width,
                    cell_count=rows_out * width,
                )
            )

    @staticmethod
    def _slice_spine(template: PhysicalOperator) -> "set[int]":
        """Ids of the slice consumer and its ancestors in the template tree.

        These are the operators whose streams are partitioned across the
        pool; everything else runs identically in every worker.  Falls back
        to the whole tree (sum everywhere — the old, conservative
        behaviour) if no consumer is found.
        """
        path: List[PhysicalOperator] = []

        def find(operator: PhysicalOperator) -> bool:
            path.append(operator)
            if operator.consumes_probe_slice:
                return True
            for child in operator.children():
                if find(child):
                    return True
            path.pop()
            return False

        if find(template):
            return {id(operator) for operator in path}
        return {id(operator) for operator in operators_in_order(template)}
