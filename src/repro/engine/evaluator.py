"""The streaming query evaluator: pinned physical plans, bounded live rows.

:class:`EngineEvaluator` sits alongside the materialising evaluators of
:mod:`repro.expressions` with the same ``evaluate(expression, arguments) ->
(relation, trace)`` contract, but it executes a cost-based *physical plan*
(:mod:`repro.engine.planner`) of streaming operators
(:mod:`repro.engine.physical`) instead of materialising every intermediate
relation.  On the paper's blow-up constructions this bounds peak memory by
the *inputs* (hash-table build sides, dedup sets) while the naive regime's
peak grows exponentially — the trace's ``peak_live_rows`` field makes the
difference measurable against the materialising evaluators'
``peak_intermediate_cardinality``.

Plans are **pinned per expression**: the first evaluation plans against the
bound relations' statistics catalog and stores the plan (with every compiled
join/projection artifact resolved) in a per-evaluator dictionary keyed by the
expression, so repeated evaluation neither re-plans nor touches the
process-global LRU plan caches — the per-expression pinning the PR 1 roadmap
asked for.  Call :meth:`EngineEvaluator.clear_plans` (or use a fresh
evaluator) after the data distribution shifts enough that a replan is worth
it; a pinned plan stays *correct* for any conforming database either way.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set, Tuple

from ..algebra.relation import Relation
from ..expressions.ast import Expression
from ..expressions.evaluator import (
    ArgumentLike,
    EvaluationTrace,
    TraceStep,
    bind_arguments,
)
from ..perf.counters import kernel_counters
from .physical import MemoryMeter, PhysicalOperator
from .planner import PhysicalPlan, Planner, PlannerConfig

__all__ = ["EngineEvaluator"]

_NODE_KINDS = {
    "TableScan": "operand",
    "StreamingProject": "projection",
    "HashJoin": "join",
    "MergeJoin": "join",
    "Sort": "sort",
    "StreamingUnion": "union",
    "StreamingDifference": "difference",
}


class EngineEvaluator:
    """Evaluate projection-join expressions on the streaming engine."""

    def __init__(self, config: Optional[PlannerConfig] = None, pin_plans: bool = True):
        """Create an evaluator.

        ``config`` tunes the planner (merge-join preference, build-side
        dedup elision); ``pin_plans=False`` re-plans on every call, which the
        benchmarks use to isolate planning cost.
        """
        self._planner = Planner(config)
        self._pin_plans = pin_plans
        self._plans: Dict[Expression, PhysicalPlan] = {}

    def plan_for(self, expression: Expression, arguments: ArgumentLike) -> PhysicalPlan:
        """Return the (pinned) physical plan for ``expression``.

        The plan is built from the bound relations' statistics on first use
        and reused verbatim afterwards.
        """
        plan = self._plans.get(expression) if self._pin_plans else None
        if plan is None:
            bound = bind_arguments(expression, arguments)
            stats = {name: relation.stats() for name, relation in bound.items()}
            plan = self._planner.plan(expression, stats)
            if self._pin_plans:
                self._plans[expression] = plan
        return plan

    def clear_plans(self) -> None:
        """Drop every pinned plan (e.g. after a data-distribution shift)."""
        self._plans.clear()

    def evaluate(
        self, expression: Expression, arguments: ArgumentLike
    ) -> Tuple[Relation, EvaluationTrace]:
        """Evaluate and return ``(result, trace)``.

        The trace's ``steps`` record each physical operator's *streamed*
        output cardinality (nothing was materialised); ``peak_live_rows``
        reports the high-water mark of rows resident in engine state.
        """
        bound = bind_arguments(expression, arguments)
        plan = self.plan_for(expression, bound)
        trace = EvaluationTrace()
        trace.input_cardinality = sum(len(relation) for relation in bound.values())
        counters = kernel_counters()
        before = counters.snapshot()

        meter = MemoryMeter()
        root = plan.executor(bound, meter)
        rows: Set[Tuple] = set()
        update = rows.update
        size = 0
        for block in root.blocks():
            update(block)
            grown = len(rows)
            if grown != size:
                meter.acquire(grown - size)
                size = grown
        result = Relation._from_trusted(root.scheme, frozenset(rows))

        self._record_steps(root, trace)
        trace.kernel_activity = counters.delta_since(before)
        trace.result_cardinality = len(result)
        trace.peak_live_rows = meter.peak
        return result, trace

    @staticmethod
    def _record_steps(root: PhysicalOperator, trace: EvaluationTrace) -> None:
        """Record per-operator streamed cardinalities, children first."""

        def visit(operator: PhysicalOperator) -> None:
            for child in operator.children():
                visit(child)
            width = len(operator.scheme)
            trace.record(
                TraceStep(
                    description=operator.label(),
                    node_kind=_NODE_KINDS.get(type(operator).__name__, "operator"),
                    cardinality=operator.rows_out,
                    scheme_width=width,
                    cell_count=operator.rows_out * width,
                )
            )

        visit(root)
