"""The streaming query evaluator: pinned plans, bounded live rows, budgets.

:class:`EngineEvaluator` sits alongside the materialising evaluators of
:mod:`repro.expressions` with the same ``evaluate(expression, arguments) ->
(relation, trace)`` contract, but it executes a cost-based *physical plan*
(:mod:`repro.engine.planner`) of streaming operators
(:mod:`repro.engine.physical`) instead of materialising every intermediate
relation.  On the paper's blow-up constructions this bounds peak memory by
the *inputs* (hash-table build sides, dedup sets) while the naive regime's
peak grows exponentially — the trace's ``peak_live_rows`` field makes the
difference measurable against the materialising evaluators'
``peak_intermediate_cardinality``.

Two execution knobs extend the PR 2 engine:

* ``budget`` (row count or :class:`~repro.engine.physical.MemoryBudget`)
  caps the rows resident in engine state.  Hash joins lower to
  :class:`~repro.engine.physical.GraceHashJoin` nodes that spill their
  build side to disk partitions when the meter would overflow, recursing on
  oversized partitions — the output stays set-equal, the spill activity is
  visible in ``trace.kernel_activity`` (``join_spills``, ``spill_rows``,
  ...), and ``trace.peak_build_rows`` reports the largest build table that
  was actually resident.
* ``workers`` partitions the plan's driving probe scan across a worker
  pool (:mod:`repro.engine.parallel`), executing one pinned plan
  concurrently.  The merged output is set-equal to serial execution; if
  the pool cannot deliver (fork unavailable, unpicklable rows) evaluation
  silently falls back to serial, which is always correct.

Plans are **pinned per expression**: the first evaluation plans against the
bound relations' statistics catalog and stores the plan (with every compiled
join/projection artifact resolved) in a per-evaluator dictionary keyed by the
expression, so repeated evaluation neither re-plans nor touches the
process-global LRU plan caches.  Pinning is lock-guarded, so one evaluator
may be shared by concurrent threads (each evaluation still gets its own
meter and operator tree).  Call :meth:`EngineEvaluator.clear_plans` (or use
a fresh evaluator) after the data distribution shifts enough that a replan
is worth it; a pinned plan stays *correct* for any conforming database
either way.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..algebra.relation import Relation
from ..expressions.ast import Expression
from ..expressions.evaluator import (
    ArgumentLike,
    EvaluationTrace,
    TraceStep,
    bind_arguments,
)
from ..perf.counters import kernel_counters
from .parallel import (
    ForkProbePool,
    ParallelExecutionError,
    default_backend,
    drain_metered,
    execute_parallel,
    operators_in_order,
)
from .physical import MemoryBudget, MemoryMeter, PhysicalOperator
from .planner import PhysicalPlan, Planner, PlannerConfig

__all__ = ["EngineEvaluator"]

_NODE_KINDS = {
    "TableScan": "operand",
    "PartitionedScan": "operand",
    "StreamingProject": "projection",
    "HashJoin": "join",
    "GraceHashJoin": "join",
    "MergeJoin": "join",
    "Sort": "sort",
    "StreamingUnion": "union",
    "StreamingDifference": "difference",
}


class EngineEvaluator:
    """Evaluate projection-join expressions on the streaming engine."""

    def __init__(
        self,
        config: Optional[PlannerConfig] = None,
        pin_plans: bool = True,
        budget: "MemoryBudget | int | None" = None,
        workers: Optional[int] = None,
        parallel_backend: Optional[str] = None,
        max_pools: int = 1,
    ):
        """Create an evaluator.

        ``config`` tunes the planner (merge-join preference, build-side
        dedup elision, and — when set there — budget/workers);
        ``pin_plans=False`` re-plans on every call, which the benchmarks use
        to isolate planning cost.  ``budget`` and ``workers`` override the
        config's fields: a row budget triggers Grace-hash spilling, a worker
        count > 1 enables the parallel probe stage.  ``parallel_backend``
        forces ``"fork"`` or ``"thread"`` (default: fork where available).
        ``max_pools`` caps the persistent fork-probe pools kept warm at
        once (one per bound plan, LRU-evicted beyond the cap) — a serving
        session raises it so mixed query traffic does not thrash re-forks.
        """
        base = config or PlannerConfig()
        coerced = MemoryBudget.coerce(budget)
        if coerced is not None:
            base = replace(base, budget=coerced)
        if workers is not None:
            base = replace(base, workers=max(int(workers), 1))
        self.config = base
        self._planner = Planner(base)
        self._pin_plans = pin_plans
        self._plans: Dict[Expression, PhysicalPlan] = {}
        self._plans_lock = threading.Lock()
        self._parallel_backend = parallel_backend
        # Persistent fork pools, one per bound plan, LRU-capped: forking is
        # the fork backend's fixed cost, so repeated evaluation of a bound
        # plan — the serving steady state — forks once and re-runs its
        # pool.  Keys carry object ids, but every entry keeps strong
        # references to the keyed plan and relations, so a live key's ids
        # cannot be recycled under us.
        self._pools: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._max_pools = max(int(max_pools), 1)
        self._pool_lock = threading.Lock()

    def close(self) -> None:
        """Shut down every persistent worker pool.  Idempotent."""
        with self._pool_lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for entry in pools:
            entry[-1].close()

    @property
    def open_pools(self) -> int:
        """How many persistent fork-probe pools are currently warm."""
        with self._pool_lock:
            return len(self._pools)

    def __del__(self):  # pragma: no cover - interpreter-dependent timing
        try:
            self.close()
        except Exception:
            pass

    @staticmethod
    def _pool_key(
        plan: PhysicalPlan,
        bound: Mapping[str, Relation],
        workers: int,
        budget_rows: Optional[int],
    ) -> tuple:
        """The identity of one *bound* plan: plan object + exact relations.

        Identity (not equality) is deliberate: relations are immutable, so
        the same objects mean a pool's forked children hold inherited copies
        that are still the truth; any rebinding — even to an equal relation
        — must fork a fresh pool.  Entries keep strong references to the
        keyed objects, so a live key's ids cannot be recycled.
        """
        return (
            id(plan),
            workers,
            budget_rows,
            tuple(sorted((name, id(relation)) for name, relation in bound.items())),
        )

    def _pool_for(
        self,
        plan: PhysicalPlan,
        bound: Mapping[str, Relation],
        workers: int,
        budget_rows: Optional[int],
    ) -> ForkProbePool:
        """The cached pool for this exact bound plan, forked on first use.

        Pools are keyed per bound plan (see :meth:`_pool_key`) and kept in
        LRU order with at most ``max_pools`` warm: serving mixed query
        traffic keeps each query's pool alive between its executions, while
        plan churn beyond the cap closes the coldest pool instead of leaking
        its forked children.
        """
        key = self._pool_key(plan, bound, workers, budget_rows)
        entry = self._pools.get(key)
        if entry is not None:
            self._pools.move_to_end(key)
            return entry[-1]
        pool = ForkProbePool(plan, dict(bound), workers, budget_rows)
        self._pools[key] = (plan, tuple(bound.items()), workers, budget_rows, pool)
        while len(self._pools) > self._max_pools:
            _, evicted = self._pools.popitem(last=False)
            evicted[-1].close()
        return pool

    def _drop_pool(
        self,
        plan: PhysicalPlan,
        bound: Mapping[str, Relation],
        workers: int,
        budget_rows: Optional[int],
    ) -> None:
        """Close and forget the pool for one bound plan (after a failure)."""
        key = self._pool_key(plan, bound, workers, budget_rows)
        entry = self._pools.pop(key, None)
        if entry is not None:
            entry[-1].close()

    def plan_for(self, expression: Expression, arguments: ArgumentLike) -> PhysicalPlan:
        """Return the (pinned) physical plan for ``expression``.

        The plan is built from the bound relations' statistics on first use
        and reused verbatim afterwards.  Pinning is race-free: concurrent
        first calls may both compute a candidate, but exactly one is stored
        and returned to everyone.
        """
        if self._pin_plans:
            plan = self._plans.get(expression)
            if plan is not None:
                return plan
        bound = bind_arguments(expression, arguments)
        stats = {name: relation.stats() for name, relation in bound.items()}
        if not self._pin_plans:
            return self._planner.plan(expression, stats)
        with self._plans_lock:
            plan = self._plans.get(expression)
            if plan is None:
                plan = self._planner.plan(expression, stats)
                self._plans[expression] = plan
        return plan

    def clear_plans(self) -> None:
        """Drop every pinned plan (e.g. after a data-distribution shift)."""
        with self._plans_lock:
            self._plans.clear()

    def forget_plan(self, expression: Expression) -> None:
        """Drop one expression's pinned plan so its next use re-plans.

        The serving facade calls this when a relation the expression reads
        is replaced: the fresh relation carries a fresh statistics catalog
        (construction is invalidation), so the next :meth:`plan_for` plans
        against the new distribution.  Warm pools keyed by the dropped plan
        are closed eagerly — their keys could never be hit again, so left
        in the LRU they would strand forked children (and a full copy of
        the replaced relations) until enough *other* plans churned them
        out.
        """
        with self._plans_lock:
            plan = self._plans.pop(expression, None)
        if plan is None:
            return
        with self._pool_lock:
            stale = [
                key for key, entry in self._pools.items() if entry[0] is plan
            ]
            evicted = [self._pools.pop(key) for key in stale]
        for entry in evicted:
            entry[-1].close()

    def _effective_workers(
        self, plan: PhysicalPlan, bound: Mapping[str, Relation]
    ) -> int:
        """Degrade the configured parallelism for plans it cannot help.

        Parallelism slices the driving probe scan, so it needs one, with at
        least one row per worker — tiny inputs run serial rather than paying
        the pool spin-up for empty slices.
        """
        workers = self.config.workers
        if workers <= 1:
            return 1
        name = plan.driving_scan_name()
        if name is None:
            return 1
        if len(bound[name]) < workers:
            return 1
        return workers

    def evaluate(
        self, expression: Expression, arguments: ArgumentLike
    ) -> Tuple[Relation, EvaluationTrace]:
        """Evaluate and return ``(result, trace)``.

        The trace's ``steps`` record each physical operator's *streamed*
        output cardinality (nothing was materialised; under parallel
        execution they are summed across workers); ``peak_live_rows``
        reports the high-water mark of rows resident in engine state, and
        ``peak_build_rows`` the largest single hash-join build table.
        """
        bound = bind_arguments(expression, arguments)
        plan = self.plan_for(expression, bound)
        trace = EvaluationTrace()
        trace.input_cardinality = sum(len(relation) for relation in bound.values())
        counters = kernel_counters()
        before = counters.snapshot()

        budget = self.config.budget
        budget_rows = budget.rows if budget is not None else None
        meter = MemoryMeter(budget_rows)
        workers = self._effective_workers(plan, bound)
        parallel = None
        if workers > 1:
            backend = self._parallel_backend or default_backend()
            try:
                if backend == "fork":
                    # Serialised on the pool lock: each pool is one pinned
                    # set of workers, not a queue (concurrent fork-backend
                    # evaluations take turns; the thread backend does not).
                    with self._pool_lock:
                        pool = self._pool_for(plan, bound, workers, budget_rows)
                        parallel = pool.run()
                else:
                    parallel = execute_parallel(
                        plan,
                        bound,
                        workers,
                        meter,
                        budget_rows=budget_rows,
                        backend=backend,
                    )
            except (ParallelExecutionError, OSError):
                # OSError covers fork itself failing (EAGAIN/ENOMEM under
                # pressure — exactly the regime a budgeted engine targets).
                if backend == "fork":
                    with self._pool_lock:
                        self._drop_pool(plan, bound, workers, budget_rows)
                parallel = None  # serial below — always correct
                # An aborted thread-backend attempt may have left its
                # acquisitions on the meter; the serial run gets a fresh one
                # so phantom rows cannot eat the budget or inflate the peak.
                meter = MemoryMeter(budget_rows)

        if parallel is not None:
            rows: Set[Tuple] = parallel.rows
            result = Relation._from_trusted(plan.root.scheme, frozenset(rows))
            self._record_parallel_steps(plan, bound, parallel, trace)
            # Workers metered their result accumulation themselves (see
            # parallel._drain), so their peaks are comparable with the
            # serial path's state+result accounting.
            trace.peak_live_rows = max(parallel.peak_live_rows, meter.peak)
            trace.peak_build_rows = parallel.build_peak_rows
        else:
            root = plan.executor(bound, meter)
            rows = drain_metered(root, meter)
            result = Relation._from_trusted(root.scheme, frozenset(rows))
            self._record_steps(root, trace)
            trace.peak_live_rows = meter.peak
            trace.peak_build_rows = max(
                operator.build_peak_rows for operator in operators_in_order(root)
            )

        trace.kernel_activity = counters.delta_since(before)
        trace.result_cardinality = len(result)
        return result, trace

    @staticmethod
    def _record_steps(root: PhysicalOperator, trace: EvaluationTrace) -> None:
        """Record per-operator streamed cardinalities, children first."""
        for operator in operators_in_order(root):
            width = len(operator.scheme)
            trace.record(
                TraceStep(
                    description=operator.label(),
                    node_kind=_NODE_KINDS.get(type(operator).__name__, "operator"),
                    cardinality=operator.rows_out,
                    scheme_width=width,
                    cell_count=operator.rows_out * width,
                )
            )

    @staticmethod
    def _record_parallel_steps(
        plan: PhysicalPlan,
        bound: Mapping[str, Relation],
        parallel,
        trace: EvaluationTrace,
    ) -> None:
        """Record per-operator cardinalities against a template tree.

        Every worker instantiates the same plan, so the trees are identical
        in shape and traversal order; a never-executed template provides the
        labels while the workers' ``rows_out`` provide the counts.  Counts
        are combined **spine-aware**: operators on the sliced probe spine
        (the slice consumer and its ancestors) see partitioned data, so
        their per-worker counts sum to the true streamed total; every other
        operator (build-side subtrees, scans under the driving projection)
        re-streams identical full data in each worker and is reported once
        (the max).  Dedup operators on the spine can still count a row in
        two workers' streams — the documented set-equal caveat.

        The (label, kind, width, on-spine) tuples are invariant per plan
        shape, so they are computed once and cached on the plan — the
        steady-state serving path must not rebuild an operator tree per
        evaluation.  The shape varies only with the bindings' scheme
        *presentation* (a reordered presentation adds a realignment wrapper
        over its scan), so the cache key is the workers count plus each
        operand's presented column order.
        """
        cache = getattr(plan, "_parallel_step_meta", None)
        if cache is None:
            cache = {}
            plan._parallel_step_meta = cache
        key = (
            parallel.workers,
            tuple(
                sorted(
                    (name, relation.scheme.names) for name, relation in bound.items()
                )
            ),
        )
        meta = cache.get(key)
        if meta is None:
            template = plan.executor(
                bound, MemoryMeter(), probe_slice=(0, parallel.workers)
            )
            operators = operators_in_order(template)
            spine = EngineEvaluator._slice_spine(template)
            meta = [
                (
                    operator.label(),
                    _NODE_KINDS.get(type(operator).__name__, "operator"),
                    len(operator.scheme),
                    id(operator) in spine,
                )
                for operator in operators
            ]
            if len(meta) == len(parallel.step_rows):
                cache[key] = meta
        for position, (description, node_kind, width, on_spine) in enumerate(meta):
            per_worker = [steps[position] for steps in parallel.worker_step_rows]
            rows_out = sum(per_worker) if on_spine else max(per_worker, default=0)
            trace.record(
                TraceStep(
                    description=description,
                    node_kind=node_kind,
                    cardinality=rows_out,
                    scheme_width=width,
                    cell_count=rows_out * width,
                )
            )

    @staticmethod
    def _slice_spine(template: PhysicalOperator) -> "set[int]":
        """Ids of the slice consumer and its ancestors in the template tree.

        These are the operators whose streams are partitioned across the
        pool; everything else runs identically in every worker.  Falls back
        to the whole tree (sum everywhere — the old, conservative
        behaviour) if no consumer is found.
        """
        path: List[PhysicalOperator] = []

        def find(operator: PhysicalOperator) -> bool:
            path.append(operator)
            if operator.consumes_probe_slice:
                return True
            for child in operator.children():
                if find(child):
                    return True
            path.pop()
            return False

        if find(template):
            return {id(operator) for operator in path}
        return {id(operator) for operator in operators_in_order(template)}
