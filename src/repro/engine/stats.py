"""Per-relation statistics catalog driving the cost-based planner.

Every :class:`~repro.algebra.relation.Relation` carries (lazily, cached) a
:class:`RelationStats`: its cardinality plus per-column distinct counts and
min/max bounds.  Relations are immutable, so *construction is invalidation* —
a relation's stats are computed at most once, from its final rows, and every
algebra operation returns a fresh relation whose stats slot starts empty.

The catalog serves two consumers:

* :func:`repro.algebra.operations.estimate_join_size` (and through it
  ``greedy_join`` / the :class:`~repro.expressions.optimizer.OptimizedEvaluator`)
  reads cached distinct counts instead of re-scanning columns on every
  estimate;
* the physical planner (:mod:`repro.engine.planner`) propagates stats through
  plan nodes with the classical System-R independence assumptions, so join
  ordering and build-side selection never require materialising anything.

Stats can also be *assumed* (:meth:`RelationStats.assumed`) for planning
without data — the ``repro engine-explain`` CLI uses this to explain a plan
from schemes and declared cardinalities alone.

Since the adaptive-estimation PR the propagation functions are also
**sample-aware**: when *both* operands of :func:`estimate_join_cardinality`
/ :func:`join_stats` (or the child of :func:`project_stats`) carry a
``sample`` attribute — a :class:`repro.engine.sampling.Sample`, attached by
:func:`repro.engine.sampling.sampled_stats` — the estimate is computed by
joining/projecting the samples instead of multiplying backed-off
selectivities, and the derived entry carries the propagated sample so
chain extensions stay measured.  The dispatch is duck-typed (``getattr``)
so this module keeps importing nothing from :mod:`repro.engine.sampling`
(which imports it) or :mod:`repro.algebra`: it reads relations duck-typed
(``.scheme.names`` / ``.rows``), which lets ``Relation.stats()`` import it
lazily without a cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ColumnStats",
    "RelationStats",
    "estimate_join_cardinality",
    "estimate_partition_count",
    "estimate_spill_depth",
    "join_estimate_provenance",
    "join_stats",
    "project_stats",
]


def _ledger_observation(left, right, common) -> Optional[int]:
    """The observed output cardinality for ``left ⋈ right``, if recorded.

    Ledger dispatch is duck-typed like the ``sample`` dispatch below: when
    either entry carries a ``ledger`` (a
    :class:`repro.engine.planstore.CardinalityLedger`, attached by
    :class:`repro.engine.planstore.LedgerBackedStats`) and both carry the
    base-operand ``names`` their subtrees cover, the ledger is asked for
    the exact (operand-set union, joined output columns) pair — an
    executed plan has *measured* that cardinality, so no estimator
    (sampled or backoff) gets a say.  The column half of the key keeps
    subtrees that read the same operands but project differently from
    answering for each other.
    """
    ledger = getattr(left, "ledger", None) or getattr(right, "ledger", None)
    if ledger is None:
        return None
    left_names = getattr(left, "names", None)
    right_names = getattr(right, "names", None)
    if not left_names or not right_names:
        return None
    columns = frozenset(left.columns) | frozenset(right.columns)
    return ledger.lookup(left_names | right_names, columns)


def join_estimate_provenance(left, right, common) -> str:
    """Where the estimate for ``left ⋈ right`` would come from.

    Returns ``"observed-ledger"`` when the plan store's ledger holds the
    measured cardinality for this exact operand set, ``"sampled"`` when
    both entries carry row samples (the sample-join estimator), and
    ``"backoff"`` for the exponential-backoff selectivity formula — the
    same dispatch order as :func:`estimate_join_cardinality`, exposed so
    ``repro engine-explain --adaptive`` can report per-node provenance.
    """
    if _ledger_observation(left, right, common) is not None:
        return "observed-ledger"
    if (
        getattr(left, "sample", None) is not None
        and getattr(right, "sample", None) is not None
    ):
        return "sampled"
    return "backoff"


def _rewrap(derived, *parents):
    """Re-attach duck-typed ledger context from ``parents`` onto ``derived``.

    The propagation functions below derive plain entries; when a parent is
    ledger-backed its ``rewrap`` hook rebuilds the derived entry with the
    union of operand names (and the observed cardinality, when the ledger
    has one) — keeping this module import-free of the plan store.
    """
    for parent in parents:
        hook = getattr(parent, "rewrap", None)
        if hook is not None:
            return hook(derived, *parents)
    return derived


@dataclass(frozen=True)
class ColumnStats:
    """Statistics of one column: distinct count and (optional) value bounds.

    ``minimum``/``maximum`` are ``None`` when the column is empty or holds
    values of mutually incomparable types.
    """

    distinct_count: int
    minimum: Optional[Hashable] = None
    maximum: Optional[Hashable] = None

    @classmethod
    def from_values(cls, values: Iterable[Hashable]) -> "ColumnStats":
        """Compute stats from a column's values (duplicates allowed).

        An already-distinct ``set`` is used as-is (never mutated), sparing
        the per-column copy on the ``RelationStats.from_relation`` hot path.
        """
        distinct = values if isinstance(values, (set, frozenset)) else set(values)
        minimum: Optional[Hashable] = None
        maximum: Optional[Hashable] = None
        if distinct:
            try:
                minimum = min(distinct)
                maximum = max(distinct)
            except TypeError:
                pass
        return cls(distinct_count=len(distinct), minimum=minimum, maximum=maximum)


@dataclass(frozen=True)
class RelationStats:
    """The statistics catalog entry for one relation (or plan node output).

    ``columns`` maps every attribute name of the relation's scheme to its
    :class:`ColumnStats`.  Entries are immutable; derived entries for plan
    nodes are built by :func:`join_stats` / :func:`project_stats`.
    """

    cardinality: int
    columns: Mapping[str, ColumnStats]

    @classmethod
    def from_relation(cls, relation) -> "RelationStats":
        """Compute the catalog entry for a relation in one pass over its rows."""
        names: Tuple[str, ...] = relation.scheme.names
        rows = relation.rows
        value_sets: Tuple[set, ...] = tuple(set() for _ in names)
        for row in rows:
            for values, value in zip(value_sets, row):
                values.add(value)
        columns = {
            name: ColumnStats.from_values(values)
            for name, values in zip(names, value_sets)
        }
        return cls(cardinality=len(rows), columns=columns)

    @classmethod
    def assumed(
        cls,
        names: Sequence[str],
        cardinality: int,
        distinct: Optional[Mapping[str, int]] = None,
    ) -> "RelationStats":
        """Build a synthetic entry for planning without data.

        Every column defaults to ``cardinality`` distinct values (each row
        distinct in every column — the most pessimistic selectivity), unless
        overridden via ``distinct``.
        """
        overrides = distinct or {}
        columns = {
            name: ColumnStats(distinct_count=max(int(overrides.get(name, cardinality)), 0))
            for name in names
        }
        return cls(cardinality=max(int(cardinality), 0), columns=columns)

    def distinct(self, name: str) -> int:
        """Distinct-value count of a column (0 for unknown columns)."""
        column = self.columns.get(name)
        return column.distinct_count if column is not None else 0

    def column(self, name: str) -> Optional[ColumnStats]:
        """The :class:`ColumnStats` of a column, or ``None`` if unknown."""
        return self.columns.get(name)


def estimate_join_cardinality(
    left: RelationStats, right: RelationStats, common: Sequence[str]
) -> float:
    """Estimate ``|L * R|`` with exponentially backed-off selectivities.

    Per shared attribute ``A`` the classical System-R selectivity is
    ``1 / max(d_L(A), d_R(A))``.  Multiplying all of them (full
    independence) catastrophically *underestimates* joins over correlated
    key columns — exactly the R_G construction's repeated clause/Y columns —
    which misleads the greedy join ordering into merging the constraining
    factor too late.  Following the standard "exponential backoff"
    correction, selectivities are applied in ascending order with exponents
    1, 1/2, 1/4, ...: the most selective attribute counts fully and each
    further one ever less, keeping the estimate usable whether or not the
    key columns are independent.  Disjoint schemes estimate as the full
    cartesian product.

    (:func:`repro.algebra.operations.estimate_join_size` deliberately keeps
    the PR 1 full-independence formula — it scores *materialised* operands
    whose cardinalities are exact, where the compounding is mild; this
    estimator is applied to *propagated* statistics along a whole plan.)

    When **both** entries carry a row sample
    (:class:`repro.engine.sampling.SampledRelationStats`), the backoff
    formula is bypassed entirely: the estimate is the scaled size of the
    *sample join* (:meth:`repro.engine.sampling.Sample.join_size`), which
    measures the joint-key overlap instead of assuming anything about it.

    And before either estimator runs, a ledger-backed entry (attached by
    the plan store) is checked for the **observed** cardinality of this
    exact operand set — a previous execution having measured the true size
    beats estimating it (see :func:`join_estimate_provenance`).
    """
    observed = _ledger_observation(left, right, common)
    if observed is not None:
        return float(observed)
    left_sample = getattr(left, "sample", None)
    right_sample = getattr(right, "sample", None)
    if left_sample is not None and right_sample is not None:
        return left_sample.join_size(right_sample, common)
    size = float(left.cardinality * right.cardinality)
    if not common or size == 0.0:
        return size
    selectivities = sorted(
        1.0 / max(left.distinct(name), right.distinct(name), 1) for name in common
    )
    exponent = 1.0
    for selectivity in selectivities:
        size *= selectivity ** exponent
        exponent /= 2.0
    return size


def estimate_partition_count(
    build_rows: float, budget_rows: int, minimum: int = 2, cap: int = 64
) -> int:
    """Estimated Grace-hash spill fan-out for a build side under a row budget.

    Targets partitions of about *half* the budget each — a loaded partition
    shares the meter with whatever other state is still resident, so filling
    the whole budget with one partition would immediately re-spill.  The
    result is rounded up to a power of two (hash-modulo partitioning splits
    most evenly at powers of two) and clamped to ``[minimum, cap]``; a build
    side already fitting the target returns 1 (no spill expected).

    This is a *planning* estimate: :class:`~repro.engine.physical.GraceHashJoin`
    uses it as its fan-out hint and corrects under-estimates at run time by
    recursively re-partitioning oversized partitions.
    """
    if budget_rows <= 0:
        return cap
    target = max(budget_rows // 2, 1)
    if build_rows <= target:
        return 1
    needed = math.ceil(build_rows / target)
    fanout = 2
    while fanout < needed and fanout < cap:
        fanout *= 2
    return max(min(fanout, cap), minimum)


def estimate_spill_depth(build_rows: float, budget_rows: int, fanout: int) -> int:
    """Expected Grace recursion depth: levels of ``fanout``-way splitting
    until a partition fits half the budget (0 = no spill expected).

    Assumes keys scatter evenly; skew is handled at run time by re-salted
    recursion, so this is a lower bound used for explain output and tests.
    """
    if budget_rows <= 0 or fanout < 2:
        return 0
    target = max(budget_rows // 2, 1)
    depth = 0
    remaining = float(build_rows)
    while remaining > target:
        remaining /= fanout
        depth += 1
    return depth


def join_stats(
    left: RelationStats,
    right: RelationStats,
    output_names: Sequence[str],
    common: Sequence[str],
) -> RelationStats:
    """Propagate stats through a natural join.

    The output cardinality is :func:`estimate_join_cardinality`; each shared
    column keeps the *smaller* operand distinct count (a join can only drop
    key values), and every column's distinct count is capped at the estimated
    output cardinality.

    When both entries carry samples the propagated entry is derived from
    the **joined sample** instead (cardinality, per-column distinct counts,
    and the sample itself ride along), so every later estimate against this
    node stays sample-based.
    """
    left_sample = getattr(left, "sample", None)
    right_sample = getattr(right, "sample", None)
    if left_sample is not None and right_sample is not None:
        return _rewrap(
            left_sample.join(right_sample, common).stats(output_names),
            left,
            right,
        )
    cardinality = estimate_join_cardinality(left, right, common)
    cap = max(int(cardinality), 0)
    common_set = frozenset(common)
    columns: Dict[str, ColumnStats] = {}
    for name in output_names:
        left_column = left.column(name)
        right_column = right.column(name)
        if name in common_set and left_column is not None and right_column is not None:
            distinct = min(left_column.distinct_count, right_column.distinct_count)
            source = left_column if left_column.distinct_count <= right_column.distinct_count else right_column
        else:
            source = left_column if left_column is not None else right_column
            distinct = source.distinct_count if source is not None else cap
        columns[name] = ColumnStats(
            distinct_count=min(distinct, cap) if cap else 0,
            minimum=source.minimum if source is not None else None,
            maximum=source.maximum if source is not None else None,
        )
    return _rewrap(RelationStats(cardinality=cap, columns=columns), left, right)


def project_stats(child: RelationStats, kept_names: Sequence[str]) -> RelationStats:
    """Propagate stats through a deduplicating projection.

    The output cardinality is bounded both by the child cardinality and by
    the product of the kept columns' distinct counts (the projection cannot
    produce more rows than distinct value combinations).  A child entry
    carrying a sample propagates the projected (deduplicated) sample
    instead.
    """
    child_sample = getattr(child, "sample", None)
    if child_sample is not None:
        return _rewrap(child_sample.project(kept_names).stats(kept_names), child)
    bound = 1
    for name in kept_names:
        bound *= max(child.distinct(name), 1)
        if bound >= child.cardinality:
            bound = child.cardinality
            break
    cardinality = min(child.cardinality, bound)
    columns = {
        name: ColumnStats(
            distinct_count=min(child.distinct(name), cardinality),
            minimum=child.column(name).minimum if child.column(name) else None,
            maximum=child.column(name).maximum if child.column(name) else None,
        )
        for name in kept_names
    }
    return _rewrap(RelationStats(cardinality=cardinality, columns=columns), child)
