"""Cost-based lowering of projection-join expressions into physical plans.

The planner turns an :mod:`repro.expressions.ast` tree into a tree of
:class:`PlanNode` descriptors, resolving every scheme-level artifact once —
compiled :class:`~repro.perf.plancache.JoinPlan` / projection pick lists are
looked up (and thereby compiled) at *planning* time and stored in the nodes,
so repeated executions of a pinned plan never touch the process-global LRU
caches again (see :class:`~repro.engine.evaluator.EngineEvaluator`, which
pins one plan per expression).

Decisions are driven by the statistics catalog (:mod:`repro.engine.stats`):

* **Join ordering** — an n-ary join is ordered greedily by estimated output
  cardinality, with pairwise estimates memoised across iterations (the same
  fix :func:`repro.algebra.operations.greedy_join` applies to the
  materialising path).
* **Build side** — each hash join builds its table on the side with the
  smaller estimated cardinality and streams the other.
* **Hash vs merge** — a merge join is placed when both inputs already
  deliver rows ordered on the join key (an order established by a
  :class:`~repro.engine.physical.Sort` or inherited through earlier
  operators), or when :attr:`PlannerConfig.prefer_merge` forces sorts in.

The cost model is deliberately coarse — unit cost per row scanned, built,
probed, or emitted, ``n·log2(n)`` for sorts — because its only job is to
rank alternatives whose cardinalities differ by orders of magnitude (the
paper's blow-up regime).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Tuple

from ..algebra.relation import Relation, _join_plan
from ..algebra.tuples import _project_plan
from ..expressions.ast import Expression, ExpressionError, Join, Operand, Projection
from .physical import (
    GraceHashJoin,
    HashJoin,
    MemoryBudget,
    MemoryMeter,
    MergeJoin,
    PartitionedScan,
    PhysicalOperator,
    Sort,
    StreamingProject,
    TableScan,
)
from .stats import (
    RelationStats,
    estimate_join_cardinality,
    estimate_partition_count,
    join_stats,
    project_stats,
)

__all__ = ["PlannerConfig", "PlanNode", "PhysicalPlan", "Planner", "plan_expression"]


@dataclass(frozen=True)
class PlannerConfig:
    """Planner knobs.

    ``prefer_merge`` forces sort-merge joins (inserting the sorts) even when
    hash joins would be cheaper — used by tests and ``engine-explain`` to
    contrast strategies.  ``dedup_into_builds`` lets a projection feeding a
    hash-join build side skip its own seen-set (the build table's per-key row
    sets deduplicate for free).

    ``budget`` caps the rows resident in engine state: hash joins lower to
    budget-aware :class:`~repro.engine.physical.GraceHashJoin` nodes (with a
    fan-out hint from :func:`~repro.engine.stats.estimate_partition_count`)
    that spill to Grace partitions when the build side would overflow.
    ``workers`` is the parallelism degree the evaluator may apply to the
    plan's driving probe scan (1 = serial); the planner records it so one
    pinned plan serves every degree — the slice is chosen at instantiation,
    not planning, time.
    """

    prefer_merge: bool = False
    dedup_into_builds: bool = True
    budget: Optional[MemoryBudget] = None
    workers: int = 1


@dataclass
class PlanNode:
    """One physical operator choice, with estimates, ready to instantiate."""

    kind: str  # "scan" | "project" | "hash-join" | "merge-join" | "sort"
    scheme: object
    stats: RelationStats
    cost: float
    children: Tuple["PlanNode", ...] = ()
    order: Optional[Tuple[str, ...]] = None
    # kind-specific payloads:
    operand_name: Optional[str] = None
    pick: Optional[Callable] = None
    dedup: bool = True
    join_plan: Optional[object] = None
    build_side: str = "right"
    sort_key: Tuple[str, ...] = ()
    #: Memory budget for hash joins, sorts, and dedup projections (None =
    #: unbudgeted in-memory state).
    budget: Optional[MemoryBudget] = None
    #: Grace spill fan-out hint when the estimated build side overflows.
    est_fanout: int = 1

    @property
    def est_rows(self) -> float:
        """The estimated output cardinality."""
        return float(self.stats.cardinality)

    def describe(self) -> str:
        """The node's one-line explain label (without estimates)."""
        if self.kind == "scan":
            return f"scan {self.operand_name}"
        if self.kind == "project":
            dedup = "" if self.dedup else ", no dedup"
            return f"project[{', '.join(self.scheme.names)}]{dedup}"
        if self.kind == "hash-join":
            on = ", ".join(self.join_plan.common_names) or "x (product)"
            if self.budget is not None:
                spill = (
                    f", est_partitions={self.est_fanout}" if self.est_fanout > 1 else ""
                )
                return (
                    f"grace hash join on ({on}) "
                    f"[build={self.build_side}, budget={self.budget.rows}{spill}]"
                )
            return f"hash join on ({on}) [build={self.build_side}]"
        if self.kind == "merge-join":
            return f"merge join on ({', '.join(self.join_plan.common_names)})"
        if self.kind == "sort":
            return f"sort by ({', '.join(self.sort_key)})"
        return self.kind

    def probe_child_index(self) -> Optional[int]:
        """Index of the child the streamed (probe) rows flow through.

        This is the path the parallel probe stage slices: the non-build side
        of a hash join, the left input of a merge join, the only child of a
        projection or sort.  ``None`` for leaves.
        """
        if self.kind in ("project", "sort"):
            return 0
        if self.kind == "hash-join":
            return 1 if self.build_side == "left" else 0
        if self.kind == "merge-join":
            return 0
        return None

    def subtree_has(self, kinds: Tuple[str, ...]) -> bool:
        """Whether this node or any descendant is one of ``kinds``."""
        if self.kind in kinds:
            return True
        return any(child.subtree_has(kinds) for child in self.children)

    def instantiate(
        self,
        bindings: Mapping[str, Relation],
        meter: MemoryMeter,
        probe_slice: Optional[Tuple[int, int]] = None,
        guard_for: Optional[Callable] = None,
    ) -> PhysicalOperator:
        """Build the executable operator tree for one evaluation.

        ``probe_slice = (index, count)`` threads a worker's hash-slice down
        the probe path (every other subtree is instantiated whole) and is
        *consumed* at the driving row source: the leaf-most projection on
        the path (a slice of the deduplicated *output* rows — slicing below
        a dedup would hand equal projected rows to several workers and
        multiply the downstream streams) or the bare scan when no
        projection sits above it.  ``count`` workers executing the same
        pinned plan therefore partition the driving row stream and nothing
        else.

        ``guard_for`` is the adaptive evaluator's hook: called as
        ``guard_for(node, operator)`` on every instantiated node, it may
        return a wrapping operator (an
        :class:`~repro.engine.physical.AdaptiveGuard` on the join chain) or
        ``None`` to keep the operator bare.
        """
        probe_index = self.probe_child_index()

        def child_slice(position: int) -> Optional[Tuple[int, int]]:
            return probe_slice if position == probe_index else None

        if self.kind == "scan":
            relation = bindings[self.operand_name]
            if probe_slice is not None:
                index, count = probe_slice
                scan: PhysicalOperator = PartitionedScan(
                    relation, meter, index, count, name=self.operand_name
                )
            else:
                scan = TableScan(relation, meter, name=self.operand_name)
            operator: PhysicalOperator = scan
            if relation.scheme.names != self.scheme.names:
                # The plan compiled against a different presentation order of
                # the same scheme: realign rows with a (dedup-free) pick.
                realign = _project_plan(relation.scheme, self.scheme)
                operator = StreamingProject(
                    scan, realign.pick, self.scheme, meter, dedup=False
                )
        elif self.kind == "project":
            own_slice: Optional[Tuple[int, int]] = None
            pass_down = probe_slice
            if probe_slice is not None and not self.children[0].subtree_has(
                ("hash-join", "merge-join", "project")
            ):
                # This is the driving projection: consume the slice here.
                own_slice, pass_down = probe_slice, None
            child = self.children[0].instantiate(bindings, meter, pass_down, guard_for)
            # A spilling seen-set does not preserve arrival order, so an
            # order-carrying dedup (feeding a merge join) stays on the
            # unspillable in-memory path.
            spillable = self.dedup and self.order is None
            operator = StreamingProject(
                child,
                self.pick,
                self.scheme,
                meter,
                dedup=self.dedup,
                probe_slice=own_slice,
                budget=self.budget if spillable else None,
            )
        elif self.kind == "hash-join":
            left = self.children[0].instantiate(bindings, meter, child_slice(0), guard_for)
            right = self.children[1].instantiate(bindings, meter, child_slice(1), guard_for)
            if self.budget is not None:
                operator = GraceHashJoin(
                    left,
                    right,
                    self.join_plan,
                    meter,
                    self.budget,
                    build_side=self.build_side,
                    fanout_hint=self.est_fanout if self.est_fanout > 1 else None,
                )
            else:
                operator = HashJoin(
                    left, right, self.join_plan, meter, build_side=self.build_side
                )
        elif self.kind == "merge-join":
            left = self.children[0].instantiate(bindings, meter, child_slice(0), guard_for)
            right = self.children[1].instantiate(bindings, meter, child_slice(1), guard_for)
            operator = MergeJoin(left, right, self.join_plan, meter)
        elif self.kind == "sort":
            child = self.children[0].instantiate(bindings, meter, child_slice(0), guard_for)
            operator = Sort(child, self.sort_key, meter, budget=self.budget)
        else:  # pragma: no cover - defensive
            raise ExpressionError(f"unknown plan node kind {self.kind!r}")
        # The planner's tracked order is authoritative (operators created
        # here only know their own local ordering behaviour).
        if self.order is not None:
            operator.output_order = self.order
        operator.est_rows = self.est_rows
        operator.est_cost = self.cost
        if guard_for is not None:
            wrapper = guard_for(self, operator)
            if wrapper is not None:
                operator = wrapper
        return operator


@dataclass
class PhysicalPlan:
    """A pinned physical plan: the node tree plus the planner's estimates."""

    root: PlanNode
    expression: Expression
    config: PlannerConfig = field(default_factory=PlannerConfig)

    @property
    def est_rows(self) -> float:
        """Estimated result cardinality."""
        return self.root.est_rows

    @property
    def est_cost(self) -> float:
        """Estimated total cost (unit-per-row model)."""
        return self.root.cost

    def executor(
        self,
        bindings: Mapping[str, Relation],
        meter: MemoryMeter,
        probe_slice: Optional[Tuple[int, int]] = None,
        guard_for: Optional[Callable] = None,
    ) -> PhysicalOperator:
        """Instantiate the operator tree against one set of bound relations.

        With ``probe_slice = (index, count)`` the driving probe scan streams
        only worker ``index``'s round-robin slice (see
        :meth:`PlanNode.instantiate`); the union of the ``count`` executors'
        outputs is set-equal to the unsliced execution.  ``guard_for`` is
        the adaptive evaluator's operator-wrapping hook (see
        :meth:`PlanNode.instantiate`).
        """
        return self.root.instantiate(bindings, meter, probe_slice, guard_for)

    def driving_scan_name(self) -> Optional[str]:
        """The operand whose scan drives the probe pipeline (sliced when
        executing in parallel), or ``None`` if the probe path has no scan."""
        node = self.root
        while node.kind != "scan":
            index = node.probe_child_index()
            if index is None or not node.children:
                return None
            node = node.children[index]
        return node.operand_name

    def explain(self) -> str:
        """Render the plan as an indented tree with per-node estimates."""
        lines: List[str] = []

        def render(node: PlanNode, depth: int) -> None:
            indent = "  " * depth
            lines.append(
                f"{indent}{node.describe()}"
                f"  [est_rows={node.est_rows:.1f} cost={node.cost:.1f}]"
            )
            for child in node.children:
                render(child, depth + 1)

        render(self.root, 0)
        return "\n".join(lines)


class Planner:
    """Lower expressions into :class:`PhysicalPlan` trees using catalog stats."""

    def __init__(self, config: Optional[PlannerConfig] = None):
        self.config = config or PlannerConfig()

    def plan(
        self, expression: Expression, stats: Mapping[str, RelationStats]
    ) -> PhysicalPlan:
        """Plan ``expression`` given one catalog entry per operand name."""
        missing = sorted(expression.operand_names() - set(stats))
        if missing:
            raise ExpressionError(f"no statistics provided for operands {missing}")
        root = self._lower(expression, stats)
        # The final projection dedups into the evaluator's result set anyway,
        # but keeping the node's own dedup makes rows_out the true result
        # cardinality for traces; only *inner* dedups are planner-elided.
        return PhysicalPlan(root=root, expression=expression, config=self.config)

    # -- lowering ------------------------------------------------------

    def _lower(self, node: Expression, stats: Mapping[str, RelationStats]) -> PlanNode:
        if isinstance(node, Operand):
            entry = stats[node.name]
            return PlanNode(
                kind="scan",
                scheme=node.scheme,
                stats=entry,
                cost=float(entry.cardinality),
                operand_name=node.name,
            )
        if isinstance(node, Projection):
            child = self._lower(node.child, stats)
            plan = _project_plan(child.scheme, node.target)
            out_stats = project_stats(child.stats, plan.target_scheme.names)
            kept = plan.target_scheme.name_set
            order: Optional[Tuple[str, ...]] = None
            if child.order:
                prefix = []
                for name in child.order:
                    if name not in kept:
                        break
                    prefix.append(name)
                order = tuple(prefix) or None
            cost = child.cost + child.est_rows + out_stats.cardinality
            budget = self.config.budget
            if budget is not None and out_stats.cardinality > budget.rows:
                # Spilling dedup: every distinct row is written and read
                # back once during the partition replay.
                cost += 2.0 * out_stats.cardinality
            return PlanNode(
                kind="project",
                scheme=plan.target_scheme,
                stats=out_stats,
                cost=cost,
                children=(child,),
                order=order,
                pick=plan.pick,
                dedup=True,
                budget=budget,
            )
        if isinstance(node, Join):
            parts = [self._lower(part, stats) for part in node.parts]
            return self._order_joins(parts)
        raise ExpressionError(f"unknown expression node {node!r}")

    # -- join ordering -------------------------------------------------

    def order_join_nodes(self, parts: List[PlanNode]) -> PlanNode:
        """Greedily (re)order already-lowered join operands into a chain.

        The adaptive evaluator's mid-stream re-planner calls this with a
        materialised-checkpoint scan node plus the not-yet-joined operand
        subtrees: the ordering logic (and the build-side/dedup-elision
        decisions of :meth:`_join_pair`) is exactly the one initial planning
        uses, only the statistics are fresher.
        """
        if len(parts) == 1:
            return parts[0]
        return self._order_joins(list(parts))

    def _order_joins(self, parts: List[PlanNode]) -> PlanNode:
        """Order an n-ary join into a pipelined left-deep chain, greedily.

        The first pair is the one with the smallest estimated join
        cardinality; every later step extends the accumulated chain with the
        operand minimising the estimated next result.  A left-deep chain
        keeps the (potentially exponential) accumulated intermediate on the
        streaming probe side of every hash join — only base operands ever
        become resident build tables, which is what bounds the engine's peak
        live rows by the inputs on the paper's blow-up constructions.

        Unlike the materialising ``greedy_join`` (which re-scans all pairs
        every step and therefore memoises), no estimate is ever needed
        twice here: the initial pass scores each pair once, and every chain
        extension scores pairs involving the fresh accumulated node —
        O(k²) estimator calls in total.
        """
        nodes: List[PlanNode] = list(parts)

        def estimate_between(a: PlanNode, b: PlanNode) -> float:
            common = [
                name for name in a.scheme.names if name in b.scheme.name_set
            ]
            return estimate_join_cardinality(a.stats, b.stats, common)

        remaining = list(range(len(nodes)))
        best_pair = (remaining[0], remaining[1])
        best_estimate = math.inf
        for position, a in enumerate(remaining):
            for b in remaining[position + 1 :]:
                candidate = estimate_between(nodes[a], nodes[b])
                if candidate < best_estimate:
                    best_estimate = candidate
                    best_pair = (a, b)
        a, b = best_pair
        accumulated = self._join_pair(nodes[a], nodes[b])
        remaining = [index for index in remaining if index not in (a, b)]
        while remaining:
            best_index = remaining[0]
            best_estimate = math.inf
            for index in remaining:
                candidate = estimate_between(accumulated, nodes[index])
                if candidate < best_estimate:
                    best_estimate = candidate
                    best_index = index
            accumulated = self._join_pair(accumulated, nodes[best_index])
            remaining.remove(best_index)
        return accumulated

    def _join_pair(self, left: PlanNode, right: PlanNode) -> PlanNode:
        plan = _join_plan(left.scheme, right.scheme)
        common = plan.common_names
        out_stats = join_stats(left.stats, right.stats, plan.joined_scheme.names, common)

        def ordered_on_key(node: PlanNode) -> bool:
            return bool(common) and tuple((node.order or ())[: len(common)]) == common

        if common and (
            (ordered_on_key(left) and ordered_on_key(right)) or self.config.prefer_merge
        ):
            children = []
            for child in (left, right):
                if not ordered_on_key(child):
                    children.append(self._sorted(child, common))
                else:
                    children.append(child)
            cost = (
                children[0].cost
                + children[1].cost
                + children[0].est_rows
                + children[1].est_rows
                + out_stats.cardinality
            )
            return PlanNode(
                kind="merge-join",
                scheme=plan.joined_scheme,
                stats=out_stats,
                cost=cost,
                children=tuple(children),
                order=common,
                join_plan=plan,
            )

        # Build-side choice: smaller estimated side, except that a join
        # child never becomes the build table while a non-join sibling is
        # available — building on a join output would materialise exactly
        # the intermediate the streaming pipeline exists to avoid, and the
        # estimate that would justify it is the least reliable one in the
        # model (compounded independence assumptions).
        left_is_join = left.kind in ("hash-join", "merge-join")
        right_is_join = right.kind in ("hash-join", "merge-join")
        if left_is_join != right_is_join:
            build_side = "right" if left_is_join else "left"
        else:
            build_side = "left" if left.est_rows < right.est_rows else "right"
        build, probe = (left, right) if build_side == "left" else (right, left)
        if self.config.dedup_into_builds and build.kind == "project" and build.dedup:
            # The build table's per-key row sets deduplicate for free; drop
            # the projection's own seen-set so its output streams stateless.
            build = PlanNode(
                kind="project",
                scheme=build.scheme,
                stats=build.stats,
                cost=build.cost - build.est_rows,
                children=build.children,
                order=build.order,
                pick=build.pick,
                dedup=False,
            )
            if build_side == "left":
                left = build
            else:
                right = build
        cost = (
            left.cost
            + right.cost
            + 2.0 * build.est_rows  # build: insert every row into the table
            + probe.est_rows  # probe: one lookup per streamed row
            + out_stats.cardinality
        )
        budget = self.config.budget
        est_fanout = 1
        if budget is not None:
            # Fan-out hint for the spill path; the operator self-corrects an
            # under-estimate by re-partitioning recursively at run time.
            est_fanout = max(
                estimate_partition_count(build.est_rows, budget.rows),
                budget.spill_fanout if build.est_rows > budget.rows else 1,
            )
        # Output rows stream in probe order (contiguous runs per probe row),
        # so the probe side's order survives the join.
        return PlanNode(
            kind="hash-join",
            scheme=plan.joined_scheme,
            stats=out_stats,
            cost=cost,
            children=(left, right),
            order=probe.order,
            join_plan=plan,
            build_side=build_side,
            budget=budget,
            est_fanout=est_fanout,
        )

    def _sorted(self, child: PlanNode, key: Tuple[str, ...]) -> PlanNode:
        rows = max(child.est_rows, 1.0)
        cost = child.cost + rows * math.log2(rows + 1.0) + rows
        budget = self.config.budget
        if budget is not None and rows > budget.rows:
            # External sort: every spilled row is written and read back once.
            cost += 2.0 * rows
        return PlanNode(
            kind="sort",
            scheme=child.scheme,
            stats=child.stats,
            cost=cost,
            children=(child,),
            order=key,
            sort_key=key,
            budget=budget,
        )


def plan_expression(
    expression: Expression,
    stats: Mapping[str, RelationStats],
    config: Optional[PlannerConfig] = None,
) -> PhysicalPlan:
    """Convenience wrapper: plan ``expression`` with the given catalog entries."""
    return Planner(config).plan(expression, stats)
