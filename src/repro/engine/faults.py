"""Deterministic fault injection for the streaming engine.

The engine's failure paths — spill-file I/O, fork-pool worker death,
checkpoint overflow — are exactly the paths ordinary tests never reach,
because they only fire under disk or process misbehaviour.  This module
makes them reachable on purpose:

* :class:`FaultPlan` is a frozen, seedable description of *which* faults to
  inject (fail the Nth spill write/read, kill one pool worker mid-probe,
  force checkpoint-cap pressure).  It is threaded through
  :class:`~repro.api.config.BackendConfig` and
  :class:`~repro.engine.evaluator.EngineEvaluator` like any other knob, so
  a whole serving stack can run under a chaos schedule.
* :class:`FaultInjector` is the per-evaluation stateful counterpart: it
  counts spill I/O operations and raises :class:`InjectedFaultError` (an
  ``OSError``, so the engine's retry machinery treats it exactly like a
  real disk error) at the scheduled points.  One injector per evaluation
  keeps the schedule deterministic — "the 3rd spill write fails" means the
  same write every run.
* :class:`EngineFaultError` is the typed failure every recovery path is
  allowed to end in.  Its contract (pinned by ``tests/test_engine_faults.py``)
  is that raising it leaks nothing: spill temp dirs are removed, the shared
  meter is drained back to zero, and the fault shows up in the counters
  (``fault_injected``, ``spill_retries``).

The injection surface is intentionally the *real* code path: the injector
raises from inside :class:`~repro.engine.physical.SpillFile`'s write/read
loops and the worker loop of :mod:`repro.engine.parallel`, so a test that
passes under injection is evidence about the production retry/cleanup
logic, not about a parallel test-only implementation.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "EngineFaultError",
    "FaultPlan",
    "FaultInjector",
    "InjectedFaultError",
]


class EngineFaultError(RuntimeError):
    """A fault (injected or real) exhausted the engine's recovery budget.

    Raised instead of silently degrading when bounded retries cannot mask a
    spill I/O failure.  The raising path guarantees cleanup: every spill
    temp directory is removed, the shared :class:`~repro.engine.physical.
    MemoryMeter` is drained to zero, and the failure is recorded in the
    kernel counters — callers can therefore retry the whole evaluation
    without inheriting leaked state.
    """


class InjectedFaultError(OSError):
    """The error an injector raises at a scheduled fault point.

    Subclasses ``OSError`` so the engine's spill retry/backoff loop handles
    an injected fault exactly like a real disk error — the injection tests
    exercise the production recovery code, not a test-only branch.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seedable schedule of faults to inject.

    ``fail_spill_write_at`` / ``fail_spill_read_at``
        1-based index of the spill-file write (pickle-frame flush or file
        open) or read (frame load or open-for-read) that starts failing,
        counted per evaluation.  ``None`` injects nothing on that path.
    ``spill_failures``
        How many consecutive operations fail from that point on.  Fewer
        failures than the engine's retry budget (see
        ``physical.SPILL_IO_RETRIES``) model a *transient* fault the retry
        loop recovers from; more model a persistent one that ends in a
        typed :class:`EngineFaultError`.
    ``persistent``
        ``True`` makes every scheduled spill I/O fail forever (retries can
        never succeed), regardless of ``spill_failures``.
    ``kill_worker``
        Index of the parallel probe worker to kill mid-probe (the fork
        backend's worker calls ``os._exit`` while handling its run request;
        the thread backend raises inside the worker).  The evaluator must
        either rebuild the pool (``pool_recoveries``) or degrade loudly to
        serial (``serial_fallbacks``) — never return a wrong answer.
    ``checkpoint_cap_rows``
        Overrides the adaptive config's checkpoint row cap to force cap
        pressure, so the checkpoint-spilling path (instead of the historic
        ``adaptive_giveups``) can be pinned deterministically.
    ``seed``
        Identifies the plan (e.g. the chaos-fuzz case it was drawn for);
        carried for reproducibility reporting, not consumed at runtime.
    """

    seed: int = 0
    fail_spill_write_at: Optional[int] = None
    fail_spill_read_at: Optional[int] = None
    spill_failures: int = 1
    persistent: bool = False
    kill_worker: Optional[int] = None
    checkpoint_cap_rows: Optional[int] = None

    def __post_init__(self) -> None:
        """Validate the schedule's knobs."""
        for name in ("fail_spill_write_at", "fail_spill_read_at"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} is 1-based, got {value}")
        if self.spill_failures < 1:
            raise ValueError(
                f"spill_failures must be >= 1, got {self.spill_failures}"
            )

    @property
    def injects_anything(self) -> bool:
        """Whether this plan schedules at least one fault."""
        return (
            self.fail_spill_write_at is not None
            or self.fail_spill_read_at is not None
            or self.kill_worker is not None
            or self.checkpoint_cap_rows is not None
        )

    @classmethod
    def random_plan(cls, rng: random.Random, workers: int = 4) -> "FaultPlan":
        """Draw a random plan for the chaos-fuzz axis (seedable via ``rng``).

        Roughly a third of the draws are transient spill-write faults, a
        third transient/persistent spill-read or persistent-write faults,
        and a third worker kills — every draw is replayable from the rng
        seed recorded in the plan.
        """
        seed = rng.randrange(1 << 30)
        shape = rng.choice(
            ("write", "write", "read", "write-hard", "read-hard", "kill", "kill")
        )
        if shape == "kill":
            return cls(seed=seed, kill_worker=rng.randrange(workers))
        kwargs = {
            "seed": seed,
            "spill_failures": rng.randint(1, 2),
            "persistent": shape.endswith("-hard"),
        }
        position = rng.randint(1, 6)
        if shape.startswith("write"):
            kwargs["fail_spill_write_at"] = position
        else:
            kwargs["fail_spill_read_at"] = position
        return cls(**kwargs)


class FaultInjector:
    """Per-evaluation fault state: counts I/O operations, raises on schedule.

    Thread-safe (the thread parallel backend shares one evaluation's
    injector across workers).  Each scheduled injection increments the
    ``fault_injected`` kernel counter before raising
    :class:`InjectedFaultError`, so traces show exactly how many faults an
    evaluation absorbed.  When an :class:`repro.obs.events.EventLog` is
    attached (``events``), every injection additionally emits a ``fault``
    event — the chaos harness cross-checks that the in-process
    ``fault_injected`` delta and the ``fault`` event count agree.
    """

    def __init__(self, plan: FaultPlan, events: Optional[object] = None):
        self.plan = plan
        self.events = events
        self._writes = 0
        self._reads = 0
        self._write_failures_left = plan.spill_failures
        self._read_failures_left = plan.spill_failures
        self._lock = threading.Lock()

    def _fire(self, kind: str) -> None:
        from ..perf.counters import kernel_counters

        kernel_counters().add(fault_injected=1)
        if self.events is not None:
            self.events.emit("fault", site=f"spill-{kind}")
        raise InjectedFaultError(f"injected spill {kind} fault ({self.plan!r})")

    def on_spill_write(self) -> None:
        """Called before each spill write; raises at the scheduled points."""
        at = self.plan.fail_spill_write_at
        if at is None:
            return
        with self._lock:
            self._writes += 1
            due = self._writes >= at and (
                self.plan.persistent or self._write_failures_left > 0
            )
            if due and not self.plan.persistent:
                self._write_failures_left -= 1
        if due:
            self._fire("write")

    def on_spill_read(self) -> None:
        """Called before each spill read; raises at the scheduled points."""
        at = self.plan.fail_spill_read_at
        if at is None:
            return
        with self._lock:
            self._reads += 1
            due = self._reads >= at and (
                self.plan.persistent or self._read_failures_left > 0
            )
            if due and not self.plan.persistent:
                self._read_failures_left -= 1
        if due:
            self._fire("read")

    def should_kill_worker(self, index: int) -> bool:
        """Whether parallel worker ``index`` is scheduled to die mid-probe."""
        return self.plan.kill_worker == index
