"""Formula transformations used by the paper's reductions.

Three normalisation / padding steps are needed:

* :func:`to_strict_three_cnf` — convert an arbitrary CNF into an
  equisatisfiable 3CNF in which every clause has three *distinct* variables
  (the paper assumes this "with no loss of generality").
* :func:`pad_with_trivial_clauses` — Theorem 2's padding: append satisfiable
  filler clauses over fresh variables so that ``7m + 1`` exceeds a target,
  without affecting satisfiability.
* :func:`add_universal_guard_clauses` — Proposition 4's trick: add the clauses
  ``(v1 ∨ v2 ∨ v3)`` and ``(v4 ∨ v5 ∨ v6)`` over fresh variables and put
  ``v1, v4`` into the universally-quantified set, so that the universal set is
  not contained in any clause's variable set and contains no clause's
  variable set.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from .cnf import CNFFormula
from .literals import Clause, Literal

__all__ = [
    "fresh_variable",
    "to_strict_three_cnf",
    "pad_with_trivial_clauses",
    "pad_with_duplicate_clauses",
    "add_universal_guard_clauses",
    "ensure_minimum_clauses",
]


def fresh_variable(used: Set[str], prefix: str = "aux") -> str:
    """Return a variable name with the given prefix not present in ``used``.

    The returned name is also added to ``used`` so repeated calls keep
    producing distinct names.
    """
    index = len(used)
    while True:
        candidate = f"{prefix}{index}"
        if candidate not in used:
            used.add(candidate)
            return candidate
        index += 1


def _expand_clause(clause: Clause, used: Set[str]) -> List[Clause]:
    """Rewrite one clause into 3-literal clauses over distinct variables.

    The standard textbook expansion is used:

    * a tautological clause (it contains ``x`` and ``¬x``) is always true and
      is simply dropped;
    * a unit clause ``(l)`` becomes the four clauses ``(l ∨ ±y ∨ ±z)`` over
      two fresh variables — every combination of the fresh variables still
      requires ``l``;
    * a binary clause ``(l1 ∨ l2)`` becomes ``(l1 ∨ l2 ∨ y)`` and
      ``(l1 ∨ l2 ∨ ¬y)`` over one fresh variable;
    * a clause with more than three literals is chained through fresh link
      variables: ``(l1 ∨ l2 ∨ s1)``, ``(¬s1 ∨ l3 ∨ s2)``, ...,
      ``(¬s_{k-3} ∨ l_{k-1} ∨ l_k)``.

    All cases preserve satisfiability (and, projected to the original
    variables, the set of satisfying assignments).
    """
    if clause.is_tautological():
        return []

    literals = list(clause.literals)

    if len(literals) == 3:
        return [clause]

    if len(literals) == 1:
        first = Literal(fresh_variable(used))
        second = Literal(fresh_variable(used))
        return [
            Clause([literals[0], first, second]),
            Clause([literals[0], -first, second]),
            Clause([literals[0], first, -second]),
            Clause([literals[0], -first, -second]),
        ]

    if len(literals) == 2:
        filler = Literal(fresh_variable(used))
        return [
            Clause(literals + [filler]),
            Clause(literals + [-filler]),
        ]

    # More than three literals: chain with fresh linking variables.
    result: List[Clause] = []
    link = Literal(fresh_variable(used))
    result.append(Clause([literals[0], literals[1], link]))
    remaining = literals[2:]
    while len(remaining) > 2:
        next_link = Literal(fresh_variable(used))
        result.append(Clause([-link, remaining[0], next_link]))
        remaining = remaining[1:]
        link = next_link
    result.append(Clause([-link, remaining[0], remaining[1]]))
    return result


def to_strict_three_cnf(formula: CNFFormula) -> CNFFormula:
    """Return an equisatisfiable formula in strict 3CNF.

    Every clause of the result has exactly three literals over pairwise
    distinct variables, as the Section 3 construction assumes.  The number of
    satisfying assignments is *not* preserved in general (fresh variables are
    introduced); satisfiability is.
    """
    used: Set[str] = set(formula.variables)
    clauses: List[Clause] = []
    for clause in formula.clauses:
        clauses.extend(_expand_clause(clause, used))
    return CNFFormula(clauses)


def ensure_minimum_clauses(formula: CNFFormula, minimum: int = 3) -> CNFFormula:
    """Append always-satisfiable fresh clauses until at least ``minimum`` clauses exist.

    The paper assumes "the expression consists of at least three clauses";
    this padding preserves both satisfiability and the satisfying assignments
    projected to the original variables (each filler clause is over fresh
    variables and is satisfiable).
    """
    if formula.num_clauses >= minimum:
        return formula
    used: Set[str] = set(formula.variables)
    extra: List[Clause] = []
    while formula.num_clauses + len(extra) < minimum:
        a, b, c = (fresh_variable(used) for _ in range(3))
        extra.append(Clause([Literal(a), Literal(b), Literal(c)]))
    return formula.extended(extra)


def pad_with_trivial_clauses(formula: CNFFormula, extra_clauses: int) -> CNFFormula:
    """Theorem 2's padding: append ``extra_clauses`` satisfiable filler clauses.

    Each filler clause is a positive clause over three fresh variables, so it
    never affects satisfiability and each one multiplies the model count by
    ``2^3 − 1 = 7`` over its fresh variables (exactly the behaviour the
    cardinality argument of Theorem 2 budgets for).
    """
    if extra_clauses < 0:
        raise ValueError("extra_clauses must be non-negative")
    used: Set[str] = set(formula.variables)
    extra: List[Clause] = []
    for _ in range(extra_clauses):
        a, b, c = (fresh_variable(used, prefix="pad") for _ in range(3))
        extra.append(Clause([Literal(a), Literal(b), Literal(c)]))
    return formula.extended(extra)


def pad_with_duplicate_clauses(formula: CNFFormula, extra_clauses: int) -> CNFFormula:
    """Append ``extra_clauses`` copies of the formula's last clause.

    Duplicating an existing clause changes neither satisfiability nor the set
    of satisfying assignments, but it does increase the clause count ``m`` —
    which is exactly what the Theorem 2 padding argument needs (it only cares
    about ``β' = m' + 1`` exceeding ``β``).  Unlike
    :func:`pad_with_trivial_clauses` it introduces no fresh variables, so the
    model count (and hence the size of ``φ_{G'}(R_{G'})``) does not blow up.
    """
    if extra_clauses < 0:
        raise ValueError("extra_clauses must be non-negative")
    if not formula.clauses:
        raise ValueError("cannot duplicate a clause of an empty formula")
    last = formula.clauses[-1]
    return formula.extended([last] * extra_clauses)


def add_universal_guard_clauses(
    formula: CNFFormula, universal: Sequence[str]
) -> Tuple[CNFFormula, Tuple[str, ...]]:
    """Apply the Proposition 4 restriction to a Q-3SAT instance.

    Adds the clauses ``(v1 | v2 | v3)`` and ``(v4 | v5 | v6)`` over six fresh
    variables and returns the extended formula together with the universal set
    extended by ``v1`` and ``v4``.  After this transformation the universal
    set is not contained in any clause's variable set, and no clause's
    variable set is contained in the universal set — the two technical
    restrictions Theorems 4 and 5 rely on — while the truth of
    ``∀X ∃X' G`` is unchanged.
    """
    used: Set[str] = set(formula.variables)
    guards = [fresh_variable(used, prefix="v") for _ in range(6)]
    clause_one = Clause([Literal(guards[0]), Literal(guards[1]), Literal(guards[2])])
    clause_two = Clause([Literal(guards[3]), Literal(guards[4]), Literal(guards[5])])
    extended = formula.extended([clause_one, clause_two])
    new_universal = tuple(universal) + (guards[0], guards[3])
    return extended, new_universal
