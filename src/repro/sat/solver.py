"""A DPLL satisfiability solver.

The reproduction needs an *independent* ground truth for satisfiability: every
reduction of the paper is verified in both directions by comparing the
relational-query side against this solver.  The implementation is a classic
recursive DPLL with unit propagation, pure-literal elimination, and a
most-occurrences branching heuristic — entirely adequate for the formula sizes
the benchmarks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .assignments import Assignment
from .cnf import CNFFormula
from .literals import Clause, Literal

__all__ = ["DPLLSolver", "SolverResult", "is_satisfiable", "find_model"]


@dataclass
class SolverResult:
    """Outcome of a satisfiability call.

    Attributes
    ----------
    satisfiable:
        Whether the formula has a model.
    model:
        A satisfying total assignment when ``satisfiable`` is true, otherwise
        ``None``.
    decisions:
        Number of branching decisions made (a rough work measure used by the
        benchmark harness).
    propagations:
        Number of unit propagations performed.
    """

    satisfiable: bool
    model: Optional[Assignment] = None
    decisions: int = 0
    propagations: int = 0


@dataclass
class _SearchState:
    """Mutable counters shared across the recursive search."""

    decisions: int = 0
    propagations: int = 0


class DPLLSolver:
    """Davis–Putnam–Logemann–Loveland solver over :class:`CNFFormula`."""

    def __init__(self, use_pure_literal_rule: bool = True):
        self._use_pure_literal_rule = use_pure_literal_rule

    def solve(self, formula: CNFFormula) -> SolverResult:
        """Decide satisfiability and return a model when one exists."""
        state = _SearchState()
        clauses = [list(clause.literals) for clause in formula.clauses]
        model = self._search(clauses, {}, state)
        if model is None:
            return SolverResult(
                satisfiable=False,
                model=None,
                decisions=state.decisions,
                propagations=state.propagations,
            )
        # Complete the model over all variables (unconstrained variables -> False).
        complete = {variable: model.get(variable, False) for variable in formula.variables}
        return SolverResult(
            satisfiable=True,
            model=Assignment(complete),
            decisions=state.decisions,
            propagations=state.propagations,
        )

    # -- internals -------------------------------------------------------

    def _search(
        self,
        clauses: List[List[Literal]],
        assignment: Dict[str, bool],
        state: _SearchState,
    ) -> Optional[Dict[str, bool]]:
        simplified = self._simplify(clauses, assignment, state)
        if simplified is None:
            return None
        clauses = simplified
        if not clauses:
            return dict(assignment)

        if self._use_pure_literal_rule:
            pure = self._find_pure_literal(clauses)
            if pure is not None:
                assignment = dict(assignment)
                assignment[pure.variable] = pure.positive
                return self._search(clauses, assignment, state)

        branch_variable = self._choose_variable(clauses)
        state.decisions += 1
        for value in (True, False):
            candidate = dict(assignment)
            candidate[branch_variable] = value
            result = self._search(clauses, candidate, state)
            if result is not None:
                return result
        return None

    @staticmethod
    def _simplify(
        clauses: List[List[Literal]],
        assignment: Dict[str, bool],
        state: _SearchState,
    ) -> Optional[List[List[Literal]]]:
        """Apply the current assignment and unit propagation; None on conflict."""
        assignment = assignment  # mutated in place by unit propagation below
        changed = True
        current = clauses
        while changed:
            changed = False
            next_clauses: List[List[Literal]] = []
            for clause in current:
                satisfied = False
                remaining: List[Literal] = []
                for literal in clause:
                    if literal.variable in assignment:
                        if literal.evaluate(assignment):
                            satisfied = True
                            break
                    else:
                        remaining.append(literal)
                if satisfied:
                    continue
                if not remaining:
                    return None
                if len(remaining) == 1:
                    unit = remaining[0]
                    assignment[unit.variable] = unit.positive
                    state.propagations += 1
                    changed = True
                else:
                    next_clauses.append(remaining)
            current = next_clauses
        return current

    @staticmethod
    def _find_pure_literal(clauses: List[List[Literal]]) -> Optional[Literal]:
        polarity: Dict[str, set] = {}
        for clause in clauses:
            for literal in clause:
                polarity.setdefault(literal.variable, set()).add(literal.positive)
        for variable, signs in polarity.items():
            if len(signs) == 1:
                return Literal(variable, positive=next(iter(signs)))
        return None

    @staticmethod
    def _choose_variable(clauses: List[List[Literal]]) -> str:
        counts: Dict[str, int] = {}
        for clause in clauses:
            for literal in clause:
                counts[literal.variable] = counts.get(literal.variable, 0) + 1
        return max(counts, key=lambda variable: (counts[variable], variable))


def is_satisfiable(formula: CNFFormula) -> bool:
    """Return whether ``formula`` has a satisfying assignment."""
    return DPLLSolver().solve(formula).satisfiable


def find_model(formula: CNFFormula) -> Optional[Assignment]:
    """Return a satisfying assignment of ``formula`` or ``None``."""
    result = DPLLSolver().solve(formula)
    return result.model if result.satisfiable else None
