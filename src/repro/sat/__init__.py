"""Boolean satisfiability substrate.

Everything the paper's reductions need on the propositional side: literals,
clauses, CNF formulas, the strict-3CNF normalisation, a DPLL solver used as
ground truth, exact model counting for Theorem 3, DIMACS I/O, and the workload
generators driven by the benchmark harness.
"""

from .assignments import Assignment, all_assignments
from .cnf import CNFFormula, is_three_cnf, parse_formula
from .counting import (
    ModelCounter,
    count_models,
    count_models_bruteforce,
    enumerate_models,
)
from .dimacs import parse_dimacs, to_dimacs
from .generators import (
    forced_unsatisfiable,
    paper_example_formula,
    pigeonhole_formula,
    planted_satisfiable,
    random_three_cnf,
)
from .literals import Clause, Literal
from .solver import DPLLSolver, SolverResult, find_model, is_satisfiable
from .transforms import (
    add_universal_guard_clauses,
    ensure_minimum_clauses,
    fresh_variable,
    pad_with_duplicate_clauses,
    pad_with_trivial_clauses,
    to_strict_three_cnf,
)

__all__ = [
    "Assignment",
    "all_assignments",
    "CNFFormula",
    "is_three_cnf",
    "parse_formula",
    "Clause",
    "Literal",
    "DPLLSolver",
    "SolverResult",
    "find_model",
    "is_satisfiable",
    "ModelCounter",
    "count_models",
    "count_models_bruteforce",
    "enumerate_models",
    "parse_dimacs",
    "to_dimacs",
    "random_three_cnf",
    "planted_satisfiable",
    "forced_unsatisfiable",
    "pigeonhole_formula",
    "paper_example_formula",
    "to_strict_three_cnf",
    "pad_with_trivial_clauses",
    "pad_with_duplicate_clauses",
    "add_universal_guard_clauses",
    "ensure_minimum_clauses",
    "fresh_variable",
]
