"""CNF formulas, with the 3CNF restrictions the paper relies on.

The Section 3 construction assumes the input formula:

* is in conjunctive normal form with exactly three literals per clause,
* has pairwise distinct variables inside each clause, and
* consists of at least three clauses.

:class:`CNFFormula` represents an arbitrary CNF; :func:`is_three_cnf` and
:meth:`CNFFormula.require_three_cnf` check the paper's preconditions, and
:mod:`repro.sat.transforms` provides the normalisation that enforces them
without changing satisfiability.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .literals import Clause, Literal

__all__ = ["CNFFormula", "is_three_cnf", "parse_formula"]


class CNFFormula:
    """A conjunction of clauses.

    The clause order is preserved (clause ``j`` of the paper is
    ``formula.clauses[j]``), and variables are presented in first-occurrence
    order unless an explicit variable order is supplied.
    """

    __slots__ = ("_clauses", "_variables")

    def __init__(self, clauses: Iterable[Clause], variables: Optional[Sequence[str]] = None):
        self._clauses: Tuple[Clause, ...] = tuple(clauses)
        if variables is None:
            ordered: List[str] = []
            for clause in self._clauses:
                for variable in clause.variable_tuple():
                    if variable not in ordered:
                        ordered.append(variable)
            self._variables: Tuple[str, ...] = tuple(ordered)
        else:
            declared = tuple(variables)
            mentioned = {v for clause in self._clauses for v in clause.variables}
            missing = mentioned - set(declared)
            if missing:
                raise ValueError(
                    f"explicit variable order omits variables {sorted(missing)}"
                )
            if len(set(declared)) != len(declared):
                raise ValueError("explicit variable order contains duplicates")
            self._variables = declared

    # -- constructors -------------------------------------------------

    @classmethod
    def of(cls, *clauses: "Clause | str") -> "CNFFormula":
        """Build a formula from clause objects or clause strings."""
        return cls(
            clause if isinstance(clause, Clause) else Clause.parse(clause)
            for clause in clauses
        )

    @classmethod
    def parse(cls, text: str) -> "CNFFormula":
        """Parse ``"(x1 | x2 | x3) & (~x2 | x3 | ~x4)"`` into a formula.

        Clauses may be separated by ``&``, ``∧``, or newlines; parentheses are
        optional.
        """
        return parse_formula(text)

    # -- container protocol -------------------------------------------

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        """The clauses in input order."""
        return self._clauses

    @property
    def variables(self) -> Tuple[str, ...]:
        """The variables in presentation order (``x_1 ... x_n`` of the paper)."""
        return self._variables

    @property
    def variable_set(self) -> FrozenSet[str]:
        """The variables as a frozen set."""
        return frozenset(self._variables)

    @property
    def num_clauses(self) -> int:
        """``m`` in the paper's notation."""
        return len(self._clauses)

    @property
    def num_variables(self) -> int:
        """``n`` in the paper's notation."""
        return len(self._variables)

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CNFFormula):
            return self._clauses == other._clauses and self._variables == other._variables
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._clauses, self._variables))

    def __repr__(self) -> str:
        return f"CNFFormula({len(self._clauses)} clauses, {len(self._variables)} variables)"

    def __str__(self) -> str:
        return " & ".join(str(clause) for clause in self._clauses)

    # -- logic ----------------------------------------------------------

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the formula under a total assignment of its variables."""
        return all(clause.evaluate(assignment) for clause in self._clauses)

    def status(self, assignment: Mapping[str, bool]) -> Optional[bool]:
        """Three-valued evaluation under a partial assignment."""
        undecided = False
        for clause in self._clauses:
            value = clause.status(assignment)
            if value is False:
                return False
            if value is None:
                undecided = True
        return None if undecided else True

    def with_variables(self, variables: Sequence[str]) -> "CNFFormula":
        """Return the same formula with an explicit variable presentation order."""
        return CNFFormula(self._clauses, variables)

    def extended(self, clauses: Iterable[Clause], variables: Optional[Sequence[str]] = None) -> "CNFFormula":
        """Return the formula with extra clauses appended."""
        new_clauses = list(self._clauses) + list(clauses)
        if variables is None:
            return CNFFormula(new_clauses)
        return CNFFormula(new_clauses, variables)

    def restrict(self, assignment: Mapping[str, bool]) -> "CNFFormula":
        """Return the formula simplified under a partial assignment.

        Satisfied clauses are dropped; falsified literals are removed.  An
        empty clause (unsatisfiable remainder) is kept as an empty
        :class:`Clause` so callers can detect the conflict.
        """
        remaining: List[Clause] = []
        for clause in self._clauses:
            status = clause.status(assignment)
            if status is True:
                continue
            kept = [
                literal
                for literal in clause
                if literal.variable not in assignment
            ]
            remaining.append(Clause(kept))
        free_variables = [v for v in self._variables if v not in assignment]
        return CNFFormula(remaining, free_variables)

    def clause_variables(self, index: int) -> Tuple[str, ...]:
        """Return the variables of clause ``index`` in literal order."""
        return self._clauses[index].variable_tuple()

    def variable_occurrences(self) -> Dict[str, int]:
        """Return how many clauses mention each variable."""
        counts: Dict[str, int] = {variable: 0 for variable in self._variables}
        for clause in self._clauses:
            for variable in clause.variables:
                counts[variable] += 1
        return counts

    def is_three_cnf(self) -> bool:
        """Return whether every clause has exactly three distinct variables."""
        return all(
            len(clause) == 3 and clause.has_distinct_variables() for clause in self._clauses
        )

    def require_three_cnf(self, minimum_clauses: int = 1) -> None:
        """Raise ``ValueError`` unless the formula meets the paper's 3CNF assumptions."""
        if not self.is_three_cnf():
            raise ValueError(
                "formula is not in 3CNF with distinct variables per clause; "
                "use repro.sat.transforms.to_strict_three_cnf first"
            )
        if self.num_clauses < minimum_clauses:
            raise ValueError(
                f"formula has {self.num_clauses} clauses, "
                f"the construction requires at least {minimum_clauses}"
            )


def is_three_cnf(formula: CNFFormula) -> bool:
    """Return whether ``formula`` is in strict 3CNF (three distinct variables per clause)."""
    return formula.is_three_cnf()


def parse_formula(text: str) -> CNFFormula:
    """Parse a human-readable CNF string into a :class:`CNFFormula`.

    Accepted clause separators: ``&``, ``∧``, ``and`` (word), and newlines.
    Inside clauses, literals are separated by ``|``, ``∨``, ``+`` or ``v``.
    """
    normalized = text.replace("∧", "&").replace(" and ", "&").replace("\n", "&")
    pieces = []
    depth = 0
    current = []
    for char in normalized:
        if char == "(":
            depth += 1
            current.append(char)
        elif char == ")":
            depth -= 1
            current.append(char)
        elif char == "&" and depth == 0:
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
    pieces.append("".join(current))
    clauses = []
    for piece in pieces:
        piece = piece.strip()
        if not piece:
            continue
        if piece.startswith("(") and piece.endswith(")"):
            piece = piece[1:-1]
        clauses.append(Clause.parse(piece))
    if not clauses:
        raise ValueError(f"cannot parse any clause from {text!r}")
    return CNFFormula(clauses)
