"""DIMACS CNF parsing and serialisation.

The benchmark harness stores generated workloads in DIMACS format so they can
be re-run and inspected with standard SAT tooling.  Variables are named
``x1 ... xn`` on parse; on emit, any variable naming is accepted and an index
mapping is included in comment lines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .cnf import CNFFormula
from .literals import Clause, Literal

__all__ = ["parse_dimacs", "to_dimacs"]


def parse_dimacs(text: str, variable_prefix: str = "x") -> CNFFormula:
    """Parse DIMACS CNF text into a :class:`CNFFormula`.

    Comment lines (``c ...``) and the problem line (``p cnf <vars> <clauses>``)
    are skipped; clause lines are sequences of non-zero integers terminated by
    ``0`` and may span multiple lines.
    """
    tokens: List[str] = []
    declared_variables = 0
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("c") or line.startswith("%"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "cnf":
                declared_variables = int(parts[2])
            continue
        tokens.extend(line.split())

    clauses: List[Clause] = []
    current: List[Literal] = []
    max_index = 0
    for token in tokens:
        value = int(token)
        if value == 0:
            if current:
                clauses.append(Clause(current))
                current = []
            continue
        index = abs(value)
        max_index = max(max_index, index)
        current.append(Literal(f"{variable_prefix}{index}", positive=value > 0))
    if current:
        clauses.append(Clause(current))

    total_variables = max(declared_variables, max_index)
    variables = [f"{variable_prefix}{i}" for i in range(1, total_variables + 1)]
    return CNFFormula(clauses, variables)


def to_dimacs(formula: CNFFormula, comments: Iterable[str] = ()) -> str:
    """Serialise a formula to DIMACS CNF text.

    Variables are numbered by their position in ``formula.variables``; the
    mapping is recorded in comment lines so the original names survive a
    round-trip through external tools.
    """
    index_of: Dict[str, int] = {
        variable: position + 1 for position, variable in enumerate(formula.variables)
    }
    lines: List[str] = [f"c {comment}" for comment in comments]
    lines.extend(
        f"c var {position} = {variable}" for variable, position in index_of.items()
    )
    lines.append(f"p cnf {formula.num_variables} {formula.num_clauses}")
    for clause in formula.clauses:
        encoded = [
            str(index_of[literal.variable] if literal.positive else -index_of[literal.variable])
            for literal in clause
        ]
        lines.append(" ".join(encoded + ["0"]))
    return "\n".join(lines) + "\n"
