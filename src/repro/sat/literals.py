"""Literals and clauses of propositional logic.

The paper's reductions all start from Boolean expressions in 3-conjunctive
normal form.  A :class:`Literal` is a variable name with a polarity; a
:class:`Clause` is a disjunction of literals.  Both are immutable and hashable
so formulas can be deduplicated and used as dictionary keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

__all__ = ["Literal", "Clause"]


@dataclass(frozen=True, order=True)
class Literal:
    """A propositional literal: a variable or its negation."""

    variable: str
    positive: bool = True

    def __post_init__(self) -> None:
        if not self.variable:
            raise ValueError("literal variable name must be non-empty")

    def __neg__(self) -> "Literal":
        return Literal(self.variable, not self.positive)

    def negated(self) -> "Literal":
        """Return the complementary literal."""
        return -self

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the literal under a (total or partial) assignment.

        Raises ``KeyError`` if the variable is unassigned.
        """
        value = assignment[self.variable]
        return value if self.positive else not value

    def satisfied_by(self, assignment: Mapping[str, bool]) -> Optional[bool]:
        """Three-valued evaluation: ``None`` when the variable is unassigned."""
        if self.variable not in assignment:
            return None
        return self.evaluate(assignment)

    def __str__(self) -> str:
        return self.variable if self.positive else f"~{self.variable}"

    @classmethod
    def parse(cls, text: str) -> "Literal":
        """Parse ``"x1"``, ``"~x1"``, ``"-x1"`` or ``"¬x1"`` into a literal."""
        text = text.strip()
        if not text:
            raise ValueError("cannot parse an empty literal")
        if text[0] in "~-¬!":
            return cls(text[1:].strip(), positive=False)
        return cls(text, positive=True)


class Clause:
    """A disjunction of literals.

    Clauses behave as immutable ordered containers; duplicate literals are
    removed but the first-seen order is preserved for readable printing.
    """

    __slots__ = ("_literals", "_by_variable")

    def __init__(self, literals: Iterable[Literal]):
        seen = []
        for literal in literals:
            if not isinstance(literal, Literal):
                raise TypeError(f"clause literals must be Literal, got {literal!r}")
            if literal not in seen:
                seen.append(literal)
        self._literals: Tuple[Literal, ...] = tuple(seen)
        self._by_variable: Dict[str, Tuple[Literal, ...]] = {}
        for literal in self._literals:
            existing = self._by_variable.get(literal.variable, ())
            self._by_variable[literal.variable] = existing + (literal,)

    @classmethod
    def of(cls, *literals: "Literal | str") -> "Clause":
        """Build a clause from literal objects or literal strings."""
        return cls(
            literal if isinstance(literal, Literal) else Literal.parse(literal)
            for literal in literals
        )

    @classmethod
    def parse(cls, text: str) -> "Clause":
        """Parse a clause like ``"x1 | ~x2 | x3"`` or ``"x1 v -x2 v x3"``."""
        normalized = text.replace("∨", "|").replace(" v ", "|").replace(" V ", "|")
        normalized = normalized.replace("+", "|")
        parts = [p for p in (piece.strip() for piece in normalized.split("|")) if p]
        if not parts:
            raise ValueError(f"cannot parse clause from {text!r}")
        return cls(Literal.parse(p) for p in parts)

    # -- container protocol -------------------------------------------

    @property
    def literals(self) -> Tuple[Literal, ...]:
        """The literals in first-seen order."""
        return self._literals

    def __len__(self) -> int:
        return len(self._literals)

    def __iter__(self) -> Iterator[Literal]:
        return iter(self._literals)

    def __contains__(self, literal: Literal) -> bool:
        return literal in self._literals

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Clause):
            return frozenset(self._literals) == frozenset(other._literals)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._literals))

    def __repr__(self) -> str:
        return f"Clause({' | '.join(map(str, self._literals))})"

    def __str__(self) -> str:
        return "(" + " | ".join(map(str, self._literals)) + ")"

    # -- logic ----------------------------------------------------------

    @property
    def variables(self) -> FrozenSet[str]:
        """The set of variables mentioned by the clause."""
        return frozenset(self._by_variable)

    def variable_tuple(self) -> Tuple[str, ...]:
        """The distinct variables in first-occurrence order."""
        ordered = []
        for literal in self._literals:
            if literal.variable not in ordered:
                ordered.append(literal.variable)
        return tuple(ordered)

    def is_tautological(self) -> bool:
        """Return whether the clause contains a variable and its negation."""
        return any(len(lits) > 1 for lits in self._by_variable.values())

    def has_distinct_variables(self) -> bool:
        """Return whether all literals are over pairwise distinct variables."""
        return len(self._by_variable) == len(self._literals)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a total assignment of the clause's variables."""
        return any(literal.evaluate(assignment) for literal in self._literals)

    def status(self, assignment: Mapping[str, bool]) -> Optional[bool]:
        """Three-valued evaluation under a partial assignment.

        Returns ``True`` if some literal is satisfied, ``False`` if all
        literals are falsified, and ``None`` otherwise.
        """
        undecided = False
        for literal in self._literals:
            value = literal.satisfied_by(assignment)
            if value:
                return True
            if value is None:
                undecided = True
        return None if undecided else False

    def satisfying_assignments(self) -> Tuple[Dict[str, bool], ...]:
        """Enumerate the assignments to the clause's own variables that satisfy it.

        For a 3-literal clause over distinct variables this yields exactly the
        seven assignments used by the paper's ``R_G`` construction.
        """
        variables = self.variable_tuple()
        results = []
        for mask in range(2 ** len(variables)):
            assignment = {
                variable: bool((mask >> position) & 1)
                for position, variable in enumerate(variables)
            }
            if self.evaluate(assignment):
                results.append(assignment)
        return tuple(results)

    def falsifying_assignment(self) -> Dict[str, bool]:
        """Return the unique assignment to the clause's variables that falsifies it.

        Only meaningful for clauses with pairwise distinct variables (as the
        paper assumes); the falsifying assignment sets every literal false.
        """
        if not self.has_distinct_variables():
            raise ValueError("falsifying assignment requires distinct clause variables")
        return {literal.variable: not literal.positive for literal in self._literals}
