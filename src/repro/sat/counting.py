"""Model counting and enumeration (#SAT).

Theorem 3 of the paper relates ``#SAT(G)`` to the cardinality of the query
result: ``a(G) = |φ_G(R_G)| − 7m − 1``.  The benchmark harness cross-checks
the relational count against the counters implemented here.

Two counters are provided: a brute-force enumerator (simple, used as the
oracle in property tests for small formulas) and a DPLL-style counter with
component splitting on disjoint variable sets (fast enough for the benchmark
sweeps).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .assignments import Assignment, all_assignments
from .cnf import CNFFormula
from .literals import Clause, Literal

__all__ = [
    "count_models_bruteforce",
    "count_models",
    "enumerate_models",
    "ModelCounter",
]


def count_models_bruteforce(formula: CNFFormula) -> int:
    """Count satisfying assignments by enumerating all 2^n total assignments."""
    return sum(
        1 for assignment in all_assignments(formula.variables) if formula.evaluate(assignment)
    )


def enumerate_models(formula: CNFFormula) -> Iterator[Assignment]:
    """Yield every satisfying total assignment of ``formula``.

    Enumeration is by exhaustive search over total assignments; use only for
    formulas with a modest number of variables (the R_G constructions in the
    test-suite stay well below 20 variables).
    """
    for assignment in all_assignments(formula.variables):
        if formula.evaluate(assignment):
            yield assignment


class ModelCounter:
    """DPLL-style exact model counter with connected-component decomposition."""

    def count(self, formula: CNFFormula) -> int:
        """Return the number of satisfying total assignments of ``formula``."""
        clauses = [list(clause.literals) for clause in formula.clauses]
        return self._count(clauses, frozenset(formula.variables))

    # -- internals -------------------------------------------------------

    def _count(self, clauses: List[List[Literal]], free_variables: frozenset) -> int:
        clauses, assignment, conflict = self._propagate(clauses)
        if conflict:
            return 0
        free_variables = free_variables - set(assignment)
        if not clauses:
            return 2 ** len(free_variables)

        components = self._split_components(clauses)
        if len(components) > 1:
            total = 1
            covered: Set[str] = set()
            for component in components:
                component_variables = frozenset(
                    literal.variable for clause in component for literal in clause
                )
                covered |= component_variables
                total *= self._count(component, component_variables)
            # Variables not mentioned by any remaining clause are free.
            unconstrained = free_variables - covered
            return total * (2 ** len(unconstrained))

        branch_variable = self._choose_variable(clauses)
        total = 0
        for value in (True, False):
            reduced = self._assign(clauses, branch_variable, value)
            if reduced is None:
                continue
            total += self._count(reduced, free_variables - {branch_variable})
        return total

    @staticmethod
    def _propagate(
        clauses: List[List[Literal]],
    ) -> Tuple[List[List[Literal]], Dict[str, bool], bool]:
        """Apply unit propagation; returns (clauses, forced assignment, conflict)."""
        assignment: Dict[str, bool] = {}
        changed = True
        current = clauses
        while changed:
            changed = False
            next_clauses: List[List[Literal]] = []
            for clause in current:
                satisfied = False
                remaining: List[Literal] = []
                for literal in clause:
                    if literal.variable in assignment:
                        if literal.evaluate(assignment):
                            satisfied = True
                            break
                    else:
                        remaining.append(literal)
                if satisfied:
                    continue
                if not remaining:
                    return current, assignment, True
                if len(remaining) == 1:
                    unit = remaining[0]
                    assignment[unit.variable] = unit.positive
                    changed = True
                else:
                    next_clauses.append(remaining)
            current = next_clauses
        return current, assignment, False

    @staticmethod
    def _assign(
        clauses: List[List[Literal]], variable: str, value: bool
    ) -> Optional[List[List[Literal]]]:
        result: List[List[Literal]] = []
        for clause in clauses:
            satisfied = False
            remaining: List[Literal] = []
            for literal in clause:
                if literal.variable == variable:
                    if literal.positive == value:
                        satisfied = True
                        break
                else:
                    remaining.append(literal)
            if satisfied:
                continue
            if not remaining:
                return None
            result.append(remaining)
        return result

    @staticmethod
    def _choose_variable(clauses: List[List[Literal]]) -> str:
        counts: Dict[str, int] = {}
        for clause in clauses:
            for literal in clause:
                counts[literal.variable] = counts.get(literal.variable, 0) + 1
        return max(counts, key=lambda variable: (counts[variable], variable))

    @staticmethod
    def _split_components(clauses: List[List[Literal]]) -> List[List[List[Literal]]]:
        """Partition clauses into connected components by shared variables."""
        parent: Dict[str, str] = {}

        def find(item: str) -> str:
            while parent[item] != item:
                parent[item] = parent[parent[item]]
                item = parent[item]
            return item

        def unite(a: str, b: str) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_a] = root_b

        for clause in clauses:
            variables = [literal.variable for literal in clause]
            for variable in variables:
                parent.setdefault(variable, variable)
            for other in variables[1:]:
                unite(variables[0], other)

        groups: Dict[str, List[List[Literal]]] = {}
        for clause in clauses:
            root = find(clause[0].variable)
            groups.setdefault(root, []).append(clause)
        return list(groups.values())


def count_models(formula: CNFFormula) -> int:
    """Count satisfying assignments using the component-splitting DPLL counter."""
    return ModelCounter().count(formula)
