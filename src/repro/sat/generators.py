"""Workload generators for 3CNF formulas.

The benchmark harness sweeps families of formulas with known properties:

* :func:`random_three_cnf` — uniformly random 3CNF at a chosen clause/variable
  ratio (the classic hard-instance knob).
* :func:`planted_satisfiable` — random 3CNF guaranteed satisfiable by a
  planted assignment.
* :func:`forced_unsatisfiable` — an unsatisfiable 3CNF built by enumerating
  all eight sign patterns over a variable triple (the complete "contradiction
  block"), optionally padded with random satisfiable clauses.
* :func:`pigeonhole_formula` — the classic PHP(n+1, n) family, converted to
  3CNF; unsatisfiable and resolution-hard, useful as a stress family.

Every generator takes an explicit :class:`random.Random` instance or seed so
the benchmarks are reproducible.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from .assignments import Assignment
from .cnf import CNFFormula
from .literals import Clause, Literal
from .transforms import to_strict_three_cnf

__all__ = [
    "random_three_cnf",
    "planted_satisfiable",
    "forced_unsatisfiable",
    "pigeonhole_formula",
    "paper_example_formula",
]

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _variable_names(num_variables: int, prefix: str = "x") -> List[str]:
    return [f"{prefix}{i}" for i in range(1, num_variables + 1)]


def _random_clause(variables: Sequence[str], rng: random.Random) -> Clause:
    chosen = rng.sample(list(variables), 3)
    return Clause(Literal(v, positive=rng.random() < 0.5) for v in chosen)


def random_three_cnf(
    num_variables: int,
    num_clauses: int,
    seed: RandomLike = None,
    prefix: str = "x",
) -> CNFFormula:
    """Generate a uniformly random 3CNF over ``num_variables`` variables.

    Each clause picks three distinct variables uniformly and negates each with
    probability 1/2, matching the standard random 3-SAT model.
    """
    if num_variables < 3:
        raise ValueError("random 3CNF needs at least three variables")
    rng = _rng(seed)
    variables = _variable_names(num_variables, prefix)
    clauses = [_random_clause(variables, rng) for _ in range(num_clauses)]
    return CNFFormula(clauses, variables)


def planted_satisfiable(
    num_variables: int,
    num_clauses: int,
    seed: RandomLike = None,
    prefix: str = "x",
) -> Tuple[CNFFormula, Assignment]:
    """Generate a random 3CNF guaranteed satisfiable by a planted assignment.

    Returns the formula and the planted model.  Clauses are sampled uniformly
    among those satisfied by the planted assignment.
    """
    if num_variables < 3:
        raise ValueError("planted 3CNF needs at least three variables")
    rng = _rng(seed)
    variables = _variable_names(num_variables, prefix)
    planted = Assignment({v: rng.random() < 0.5 for v in variables})
    clauses: List[Clause] = []
    while len(clauses) < num_clauses:
        clause = _random_clause(variables, rng)
        if clause.evaluate(planted):
            clauses.append(clause)
    return CNFFormula(clauses, variables), planted


def forced_unsatisfiable(
    num_variables: int = 3,
    extra_random_clauses: int = 0,
    seed: RandomLike = None,
    prefix: str = "x",
) -> CNFFormula:
    """Generate an unsatisfiable 3CNF.

    The core is the complete "contradiction block" over the first three
    variables: all eight clauses with every sign pattern, which no assignment
    can satisfy.  ``extra_random_clauses`` additional random clauses over the
    full variable set may be appended (they cannot make it satisfiable).
    """
    if num_variables < 3:
        raise ValueError("need at least three variables")
    rng = _rng(seed)
    variables = _variable_names(num_variables, prefix)
    core_variables = variables[:3]
    clauses: List[Clause] = []
    for signs in itertools.product((True, False), repeat=3):
        clauses.append(
            Clause(Literal(v, positive=s) for v, s in zip(core_variables, signs))
        )
    for _ in range(extra_random_clauses):
        clauses.append(_random_clause(variables, rng))
    return CNFFormula(clauses, variables)


def pigeonhole_formula(holes: int, as_three_cnf: bool = True) -> CNFFormula:
    """The pigeonhole principle PHP(holes+1, holes) as a CNF formula.

    Variables ``p_{i}_{j}`` mean "pigeon i sits in hole j".  The formula says
    every pigeon sits somewhere and no two pigeons share a hole; with one more
    pigeon than holes it is unsatisfiable.  With ``as_three_cnf`` the at-least-
    one clauses are chained into 3CNF (the at-most-one clauses are binary and
    padded by the conversion too).
    """
    if holes < 1:
        raise ValueError("need at least one hole")
    pigeons = holes + 1
    clauses: List[Clause] = []
    for pigeon in range(1, pigeons + 1):
        clauses.append(
            Clause(Literal(f"p_{pigeon}_{hole}") for hole in range(1, holes + 1))
        )
    for hole in range(1, holes + 1):
        for first in range(1, pigeons + 1):
            for second in range(first + 1, pigeons + 1):
                clauses.append(
                    Clause(
                        [
                            Literal(f"p_{first}_{hole}", positive=False),
                            Literal(f"p_{second}_{hole}", positive=False),
                        ]
                    )
                )
    formula = CNFFormula(clauses)
    if as_three_cnf:
        return to_strict_three_cnf(formula)
    return formula


def paper_example_formula() -> CNFFormula:
    """The worked example of the paper (p. 106).

    ``G = (x1 ∨ x2 ∨ x3)(¬x2 ∨ x3 ∨ ¬x4)(¬x3 ∨ ¬x4 ∨ ¬x5)`` over
    variables x1..x5.
    """
    clauses = [
        Clause([Literal("x1"), Literal("x2"), Literal("x3")]),
        Clause([Literal("x2", False), Literal("x3"), Literal("x4", False)]),
        Clause([Literal("x3", False), Literal("x4", False), Literal("x5", False)]),
    ]
    return CNFFormula(clauses, ["x1", "x2", "x3", "x4", "x5"])
