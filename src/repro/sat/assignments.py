"""Truth assignments.

Assignments show up in two roles in the reproduction: as SAT witnesses and as
the objects encoded by the ``X_1 ... X_n`` columns of the paper's ``R_G``
construction.  :class:`Assignment` is a small immutable mapping with helpers
for both roles (enumeration, restriction, extension, conversion to 0/1 rows).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence, Tuple

__all__ = ["Assignment", "all_assignments"]


class Assignment(Mapping[str, bool]):
    """An immutable partial or total truth assignment."""

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[str, bool]):
        self._values: Dict[str, bool] = {k: bool(v) for k, v in values.items()}
        self._hash = hash(frozenset(self._values.items()))

    @classmethod
    def of(cls, **values: bool) -> "Assignment":
        """Build an assignment from keyword arguments: ``Assignment.of(x1=True)``."""
        return cls(values)

    @classmethod
    def from_bits(cls, variables: Sequence[str], bits: Iterable[int]) -> "Assignment":
        """Build an assignment from a 0/1 row aligned with ``variables``."""
        bits = list(bits)
        if len(bits) != len(variables):
            raise ValueError(
                f"expected {len(variables)} bits for variables {list(variables)}, got {len(bits)}"
            )
        return cls({variable: bool(bit) for variable, bit in zip(variables, bits)})

    # -- mapping protocol ---------------------------------------------

    def __getitem__(self, key: str) -> bool:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Assignment):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={int(v)}" for k, v in sorted(self._values.items()))
        return f"Assignment({inner})"

    # -- helpers --------------------------------------------------------

    @property
    def variables(self) -> FrozenSet[str]:
        """The assigned variables."""
        return frozenset(self._values)

    def restrict(self, variables: Iterable[str]) -> "Assignment":
        """Restrict the assignment to the listed variables (which must be assigned)."""
        return Assignment({v: self._values[v] for v in variables})

    def extend(self, other: Mapping[str, bool]) -> "Assignment":
        """Return the union of two compatible assignments.

        Raises ``ValueError`` if both assign a variable to different values.
        """
        merged = dict(self._values)
        for variable, value in other.items():
            if variable in merged and merged[variable] != bool(value):
                raise ValueError(f"conflicting values for variable {variable!r}")
            merged[variable] = bool(value)
        return Assignment(merged)

    def is_total_for(self, variables: Iterable[str]) -> bool:
        """Return whether every listed variable is assigned."""
        return set(variables) <= set(self._values)

    def as_bits(self, variables: Sequence[str]) -> Tuple[int, ...]:
        """Return the 0/1 row for ``variables`` (the paper's tuple encoding)."""
        return tuple(int(self._values[v]) for v in variables)

    def flipped(self, variable: str) -> "Assignment":
        """Return the assignment with one variable's value negated."""
        if variable not in self._values:
            raise KeyError(variable)
        values = dict(self._values)
        values[variable] = not values[variable]
        return Assignment(values)


def all_assignments(variables: Sequence[str]) -> Iterator[Assignment]:
    """Yield every total assignment of ``variables`` in lexicographic bit order.

    The enumeration order treats the first variable as the most significant
    bit, so ``all_assignments(["x", "y"])`` yields 00, 01, 10, 11 on (x, y).
    """
    variables = list(variables)
    width = len(variables)
    for mask in range(2 ** width):
        bits = [(mask >> (width - 1 - position)) & 1 for position in range(width)]
        yield Assignment.from_bits(variables, bits)
