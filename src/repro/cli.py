"""Command-line interface: ``python -m repro <command>``.

The CLI exposes the paper's pipeline for quick experimentation without writing
Python:

``python -m repro example``
    Print the paper's worked example table (R_G for the p. 106 formula) and
    the expression φ_G.

``python -m repro sat "(x1|x2|x3) & (~x1|~x2|x3)"``
    Decide satisfiability of a CNF formula through the relational reduction
    and cross-check with the DPLL solver.

``python -m repro count "(x1|x2|x3) & (~x1|~x2|x3)"``
    Count satisfying assignments via the Theorem 3 identity and via the SAT
    counter.

``python -m repro construct "(x1|x2|x3) & ..." [--show-relation]``
    Build R_G / φ_G for a formula and print its dimensions (optionally the
    full table).

``python -m repro blowup --clauses 3 4 5``
    Print the intermediate-result blow-up table for the R_G family,
    including the streaming engine's peak live-row count (``--no-engine``
    to skip it).  ``--memory-budget ROWS`` runs the engine budgeted (hash
    joins spill to Grace partitions) and ``--workers N`` runs the parallel
    probe stage — both still cross-checked against the naive result.

``python -m repro engine-explain "project[A](R * S)" --scheme "R=A B" --scheme "S=B C"``
    Lower an expression through the cost-based planner and print the chosen
    physical plan with per-node cardinality/cost estimates.  Statistics are
    assumed from ``--cardinality NAME=N`` declarations (default 100 rows per
    operand); ``--memory-budget ROWS`` shows the budget-aware plan (Grace
    joins with partition estimates); ``--paper`` explains and runs the
    paper's worked example on its real relation instead; ``--adaptive``
    switches on sampling-based estimation, mid-stream re-planning, and the
    plan store (with ``--paper`` it reports the re-plan count and, per
    join node, where the estimate came from: the observed-cardinality
    ledger, a reservoir sample, or the backoff formula).

``python -m repro plans [--executes N] [--invalidate]``
    Serve the demo serving workload from one adaptive session with the
    plan-management store attached, then print what the optimizer learned:
    each query's plan history (pins, re-pins, drift re-plans, forgets with
    join orders), the observed-cardinality ledger, and the store's
    sample-cache hit rate.  ``--invalidate`` replaces one relation
    mid-run to show scoped invalidation (only that relation's learned
    state is dropped).

``python -m repro trace [--memory-budget ROWS] [--workers N] [--adaptive] [--events PATH]``
    Execute the paper's worked example under a span tracer and print the
    ``EXPLAIN ANALYZE`` report — per-operator wall time (inclusive/self),
    rows produced, and the plan/spill/replan overhead spans — followed by
    the structured event log (``--events PATH`` additionally appends the
    events as JSON Lines).

``python -m repro metrics [--executes N] [--memory-budget ROWS]``
    Execute the worked example ``N`` times in one observed session and
    print the session's metrics registry — latency histogram, execute and
    row counters, peak-memory gauge — in Prometheus text format.

``python -m repro serve [--port 8080] [--pool-size 2] [--worker-concurrency 4]``
    Start the networked serving tier over the demo serving database
    (``repro.workloads.serving_relations``): an asyncio HTTP front with
    admission control, a shared memory-budget scheduler, and an
    invalidating result cache (``--cache-size``, 0 disables), dispatching
    to worker processes that multiplex ``--worker-concurrency`` requests
    over each pipe.  ``POST /query`` serves JSON query requests
    (per-request ``budget``/``workers`` overrides, ``--request-timeout``
    deadline → 504), ``POST /mutate`` replaces a relation's rows and
    invalidates cached results that read it, ``GET /metrics`` exposes
    the merged front+worker Prometheus exposition, ``GET /stats`` and
    ``GET /healthz`` report state.  Stop with Ctrl-C.

Formulas are written in the textual syntax of
:func:`repro.sat.parse_formula` (``|`` or ``+`` inside clauses, ``&`` between
clauses, ``~`` for negation).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import analyze_blowup, format_table
from .api import Session
from .expressions import Projection
from .reductions import RGConstruction, Theorem3Reduction
from .sat import count_models, is_satisfiable, parse_formula, to_strict_three_cnf
from .sat.transforms import ensure_minimum_clauses
from .workloads import paper_example_construction

__all__ = ["main", "build_parser"]


def _prepare(text: str):
    """Parse a formula and normalise it to the construction's requirements."""
    formula = parse_formula(text)
    formula = to_strict_three_cnf(formula)
    return ensure_minimum_clauses(formula, 3)


def _command_example(_arguments: argparse.Namespace) -> int:
    construction = paper_example_construction()
    print("G =", construction.formula)
    print()
    print(construction.relation.to_table())
    print()
    print("phi_G =", construction.expression.to_text())
    with Session(construction.relation) as session:
        result = session.execute(construction.expression)
    print(f"|phi_G(R_G)| = {len(result)}  (= 22 + #SAT(G) = 22 + 20)")
    return 0


def _command_sat(arguments: argparse.Namespace) -> int:
    formula = _prepare(arguments.formula)
    construction = RGConstruction(formula)
    with Session(construction.relation) as session:
        # The engine-backed prepared query streams with early exit, so the
        # membership check touches a fraction of phi_G(R_G) on SAT inputs.
        member = session.prepare(construction.pair_projection_expression()).contains(
            construction.u_g_tuple()
        )
    solver_answer = is_satisfiable(formula)
    print(f"formula (normalised): {formula}")
    print(f"relational answer (u_G in pi_Y phi_G(R_G)): {'SAT' if member else 'UNSAT'}")
    print(f"DPLL answer:                                {'SAT' if solver_answer else 'UNSAT'}")
    if member != solver_answer:
        print("MISMATCH — this indicates a bug; please report it.", file=sys.stderr)
        return 1
    return 0


def _command_count(arguments: argparse.Namespace) -> int:
    formula = _prepare(arguments.formula)
    reduction = Theorem3Reduction(formula)
    instance = reduction.instance()
    with Session(instance.relation) as session:
        tuple_count = len(session.execute(instance.expression))
    via_query = reduction.models_from_tuple_count(tuple_count)
    via_sat = count_models(reduction.construction.formula)
    print(f"formula (normalised): {formula}")
    print(f"|phi_G(R_G)| = {tuple_count}  (offset 7m+1 = {reduction.offset()})")
    print(f"#SAT via Theorem 3 identity: {via_query}")
    print(f"#SAT via DPLL counter:       {via_sat}")
    return 0 if via_query == via_sat else 1


def _command_construct(arguments: argparse.Namespace) -> int:
    formula = _prepare(arguments.formula)
    construction = RGConstruction(formula)
    print(f"formula (normalised): {formula}")
    print(
        f"R_G: {len(construction.relation)} tuples x {len(construction.scheme)} columns "
        f"(7m+1 = {construction.predicted_relation_size()}, "
        f"m+n+m(m-1)/2+1 = {construction.predicted_column_count()})"
    )
    print(f"phi_G: {construction.expression.to_text()}")
    if arguments.show_relation:
        print()
        print(construction.relation.to_table(max_rows=arguments.max_rows))
    return 0


def _command_blowup(arguments: argparse.Namespace) -> int:
    from .workloads import growing_construction_family

    if arguments.memory_budget is not None and arguments.memory_budget <= 0:
        raise SystemExit("--memory-budget must be a positive row count")
    if arguments.workers < 1:
        raise SystemExit("--workers must be >= 1")
    from .perf import kernel_counters

    before_sweep = kernel_counters().snapshot()
    rows = []
    for case in growing_construction_family(clause_counts=tuple(arguments.clauses)):
        construction = RGConstruction(case.formula)
        query = Projection([construction.s_attribute], construction.expression)
        measurement = analyze_blowup(
            query,
            construction.relation,
            label=case.label,
            compare_engine=not arguments.no_engine,
            engine_budget=arguments.memory_budget,
            engine_workers=arguments.workers,
        )
        rows.append({"case": case.label, **measurement.as_row()})
    print(format_table(rows))
    if not arguments.no_engine and arguments.memory_budget is not None:
        spills = kernel_counters().delta_since(before_sweep)
        print(
            f"\nengine ran budgeted at {arguments.memory_budget} rows"
            f" x {arguments.workers} worker(s):"
            f" {spills['join_spills']} join spill(s),"
            f" {spills['spill_rows']} row(s) spilled,"
            f" {spills['spill_recursions']} recursive re-partition(s),"
            f" {spills['spill_overflows']} overflow(s)"
        )
    return 0


def _parse_named_values(pairs: List[str], option: str) -> dict:
    values = {}
    for pair in pairs:
        name, separator, value = pair.partition("=")
        if not separator or not name or not value:
            raise SystemExit(f"{option} expects NAME=VALUE, got {pair!r}")
        values[name] = value
    return values


def _validated_cardinality(value, option: str) -> int:
    try:
        cardinality = int(value)
    except ValueError:
        raise SystemExit(f"{option}={value!r}: not an integer")
    if not 0 <= cardinality <= 10**15:
        raise SystemExit(f"{option}={value}: must be between 0 and 10^15")
    return cardinality


def _join_provenance_lines(plan) -> List[str]:
    """One line per join node: its estimate and where that estimate came from.

    Provenance is re-derived live from the plan's per-node statistics, so a
    report printed *after* an execution reflects what the plan store's
    ledger has learned since the plan was costed: a join whose operand set
    now has an observed cardinality reports ``observed-ledger`` even though
    it was originally costed from samples.
    """
    from .engine import join_estimate_provenance

    lines: List[str] = []

    def walk(node) -> None:
        for child in node.children:
            walk(child)
        if node.kind in ("hash-join", "merge-join"):
            left, right = node.children[0], node.children[1]
            common = tuple(node.join_plan.common_names)
            provenance = join_estimate_provenance(left.stats, right.stats, common)
            on = ", ".join(common) or "x (product)"
            lines.append(
                f"join on ({on}): est {node.est_rows:.0f} rows [{provenance}]"
            )

    walk(plan.root)
    return lines


def _command_engine_explain(arguments: argparse.Namespace) -> int:
    from .engine import PlannerConfig, RelationStats, plan_expression
    from .engine.physical import MemoryBudget
    from .expressions import parse_expression

    if arguments.memory_budget is not None and arguments.memory_budget <= 0:
        raise SystemExit("--memory-budget must be a positive row count")
    if arguments.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if arguments.paper:
        if arguments.expression or arguments.scheme or arguments.cardinality:
            raise SystemExit(
                "--paper explains the worked example and cannot be combined "
                "with an expression, --scheme, or --cardinality"
            )
        construction = paper_example_construction()
        expression = Projection([construction.s_attribute], construction.expression)
        with Session(
            construction.relation,
            backend="engine",
            budget=arguments.memory_budget,
            workers=arguments.workers,
            prefer_merge=arguments.prefer_merge,
            adaptive=arguments.adaptive,
            planstore=arguments.adaptive,
        ) as session:
            prepared = session.prepare(expression)
            print("phi_G =", expression.to_text())
            if arguments.adaptive:
                if arguments.workers > 1:
                    print(
                        "(adaptive: plan costed against reservoir samples; "
                        "mid-stream re-planning applies to serial execution "
                        "only and is inactive under --workers)"
                    )
                else:
                    print(
                        "(adaptive: plan costed against reservoir samples; "
                        "mid-stream re-planning armed)"
                    )
            print()
            print(prepared.explain())
            trace = prepared.execute().trace
        print()
        print(
            f"executed: {trace.result_cardinality} result tuples, "
            f"peak live rows {trace.peak_live_rows} "
            f"(input {trace.input_cardinality})"
        )
        if arguments.adaptive:
            live = session._engine.pinned_plan(expression)
            provenance = _join_provenance_lines(live) if live is not None else []
            if provenance:
                print(
                    f"adaptive: {trace.replans} mid-stream re-plan(s); "
                    f"per-join estimate provenance:"
                )
                for line in provenance:
                    print(f"  {line}")
            else:
                print(
                    "adaptive: plan costed from samples; no join nodes to "
                    "report provenance for"
                )
        if arguments.memory_budget is not None:
            print(
                f"budget {arguments.memory_budget} rows: "
                f"peak build rows {trace.peak_build_rows}, "
                f"{trace.counters.get('join_spills', 0)} join spill(s), "
                f"{trace.counters.get('spill_rows', 0)} row(s) spilled"
            )
        if arguments.workers > 1:
            print(f"parallel probe: {arguments.workers} workers")
        return 0
    config = PlannerConfig(
        prefer_merge=arguments.prefer_merge,
        budget=MemoryBudget.coerce(arguments.memory_budget),
        workers=arguments.workers,
    )
    if not arguments.expression:
        raise SystemExit("an expression is required unless --paper is given")
    if arguments.adaptive:
        print(
            "adaptive: enabled (sampled statistics need data, so the "
            "assumed-statistics plan below is what static planning chooses; "
            "re-planning applies when the plan executes against relations)"
        )
    schemes = _parse_named_values(arguments.scheme, "--scheme")
    if not schemes:
        raise SystemExit("engine-explain needs at least one --scheme NAME=\"A B ...\"")
    expression = parse_expression(arguments.expression, schemes)
    default_cardinality = _validated_cardinality(
        arguments.default_cardinality, "--default-cardinality"
    )
    cardinalities = {
        name: _validated_cardinality(value, f"--cardinality {name}")
        for name, value in _parse_named_values(
            arguments.cardinality, "--cardinality"
        ).items()
    }
    operand_schemes = expression.operand_schemes()
    # A typo'd name would otherwise silently fall back to the default
    # cardinality and explain a plan for the wrong statistics.
    for option, names in (("--scheme", schemes), ("--cardinality", cardinalities)):
        unknown = sorted(set(names) - set(operand_schemes))
        if unknown:
            raise SystemExit(
                f"{option} names {unknown} do not appear in the expression "
                f"(operands: {sorted(operand_schemes)})"
            )
    stats = {}
    for name, operand_scheme in operand_schemes.items():
        cardinality = cardinalities.get(name, default_cardinality)
        stats[name] = RelationStats.assumed(operand_scheme.names, cardinality)
    plan = plan_expression(expression, stats, config)
    print(f"expression: {expression.to_text()}")
    print(f"estimated result rows: {plan.est_rows:.1f}   estimated cost: {plan.est_cost:.1f}")
    print()
    print(plan.explain())
    return 0


def _command_plans(arguments: argparse.Namespace) -> int:
    from .algebra import Relation
    from .engine.planstore import PlanStoreConfig
    from .workloads import serving_queries, serving_relations

    if arguments.executes < 1:
        raise SystemExit("--executes must be >= 1")
    if arguments.rows < 1:
        raise SystemExit("--rows must be >= 1")
    relations = serving_relations(rows=arguments.rows)
    queries = serving_queries()
    with Session(
        relations,
        backend="engine",
        adaptive=True,
        planstore=PlanStoreConfig(),
    ) as session:
        prepared = [session.prepare(text) for text in queries]
        for _ in range(arguments.executes):
            for query in prepared:
                query.execute()
        if arguments.invalidate:
            # Replace S with a shifted distribution: only S's warm sample
            # and the ledger observations involving S are dropped; every
            # other relation's learned state stays warm.
            shifted = Relation.from_rows(
                "B C",
                [((i * 3) % 17, i % 23) for i in range(arguments.rows)],
                name="S",
            )
            session.set_relation("S", shifted)
            for query in prepared:
                query.execute()
        print(f"plan histories ({arguments.executes} execution(s) per query):")
        for text, query in zip(queries, prepared):
            print(f"  {text}")
            for record in query.plan_history():
                order = " * ".join(record.join_order) if record.join_order else "-"
                detail = f"   ({record.detail})" if record.detail else ""
                print(f"    {record.kind:<13} {order}{detail}")
        store = session._planstore
        print()
        print("observed-cardinality ledger:")
        snapshot = store.ledger.snapshot()
        for key in sorted(
            snapshot, key=lambda k: (len(k[0]), sorted(k[0]), sorted(k[1]))
        ):
            names, columns = key
            print(
                f"  {{{', '.join(sorted(names))}}} -> "
                f"({', '.join(sorted(columns))}): {snapshot[key]} rows"
            )
        stats = store.stats()
        lookups = stats["sample_cache_hits"] + stats["sample_cache_misses"]
        rate = 100.0 * stats["sample_cache_hits"] / lookups if lookups else 0.0
        print()
        print(
            f"store: {stats['cached_samples']} warm sample(s) "
            f"({stats['sample_cache_hits']}/{lookups} lookups hit, {rate:.0f}%), "
            f"ledger v{stats['ledger_version']} holding "
            f"{stats['ledger_entries']} operand set(s), "
            f"{stats['plan_repins']} repin(s), "
            f"{stats['drift_replans']} drift re-plan(s)"
        )
    return 0


def _observed_paper_session(arguments: argparse.Namespace, observe):
    """Open a session over the worked example with the observability layer on."""
    if arguments.memory_budget is not None and arguments.memory_budget <= 0:
        raise SystemExit("--memory-budget must be a positive row count")
    construction = paper_example_construction()
    expression = Projection([construction.s_attribute], construction.expression)
    session = Session(
        construction.relation,
        backend="engine",
        budget=arguments.memory_budget,
        workers=getattr(arguments, "workers", 1),
        adaptive=getattr(arguments, "adaptive", False),
        observe=observe,
    )
    return session, expression


def _command_trace(arguments: argparse.Namespace) -> int:
    from .obs import ObserveConfig, events_to_jsonl

    if getattr(arguments, "workers", 1) < 1:
        raise SystemExit("--workers must be >= 1")
    observe = ObserveConfig(trace=True, events=True)
    session, expression = _observed_paper_session(arguments, observe)
    with session:
        prepared = session.prepare(expression)
        report = prepared.explain_analyze()
    print("phi_G =", expression.to_text())
    print()
    print(report)
    events = session.events()
    if len(events):
        print()
        print(f"events ({len(events)}):")
        for kind, count in sorted(events.counts().items()):
            print(f"  {kind}: {count}")
    if arguments.events:
        with open(arguments.events, "a", encoding="utf-8") as handle:
            handle.write(events_to_jsonl(events.events()))
        print(f"\nwrote {len(events)} event(s) to {arguments.events}")
    return 0


def _command_metrics(arguments: argparse.Namespace) -> int:
    from .obs import render_prometheus

    if arguments.executes < 1:
        raise SystemExit("--executes must be >= 1")
    session, expression = _observed_paper_session(arguments, True)
    with session:
        prepared = session.prepare(expression)
        for _ in range(arguments.executes):
            prepared.execute()
        print(render_prometheus(session.metrics()), end="")
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    import asyncio

    from .server import ReproServer
    from .workloads import serving_queries, serving_relations

    if arguments.rows < 1:
        raise SystemExit("--rows must be >= 1")
    if arguments.session_budget is not None and arguments.session_budget <= 0:
        raise SystemExit("--session-budget must be a positive row count")
    if arguments.total_budget_rows is not None and arguments.total_budget_rows <= 0:
        raise SystemExit("--total-budget-rows must be a positive row count")
    if arguments.worker_concurrency < 1:
        raise SystemExit("--worker-concurrency must be >= 1")
    if arguments.cache_size < 0:
        raise SystemExit("--cache-size must be >= 0 (0 disables the cache)")
    if arguments.request_timeout is not None and arguments.request_timeout <= 0:
        raise SystemExit("--request-timeout must be a positive number of seconds")
    relations = serving_relations(rows=arguments.rows)
    server = ReproServer(
        relations,
        host=arguments.host,
        port=arguments.port,
        pool_size=arguments.pool_size,
        max_inflight=arguments.max_inflight,
        total_budget_rows=arguments.total_budget_rows,
        session_budget=arguments.session_budget,
        engine_workers=arguments.workers,
        worker_concurrency=arguments.worker_concurrency,
        result_cache_size=arguments.cache_size,
        request_timeout_seconds=arguments.request_timeout,
        events_dir=arguments.events_dir,
        trace=arguments.trace,
    )

    async def run() -> None:
        await server.start_async()
        shapes = ", ".join(
            f"{name}({', '.join(rel.scheme.names)})"
            for name, rel in sorted(relations.items())
        )
        print(f"serving {shapes} on {server.url}")
        print(f"  {len(serving_queries())} demo queries, e.g. "
              f"curl -d '{{\"query\": \"project[A](R * S)\"}}' {server.url}/query")
        print(f"  metrics: {server.url}/metrics   stats: {server.url}/stats")
        await server._asyncio_server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Cosmadakis (1983): the complexity of evaluating relational queries.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("example", help="print the paper's worked example").set_defaults(
        handler=_command_example
    )

    sat_parser = subparsers.add_parser(
        "sat", help="decide satisfiability through the relational reduction"
    )
    sat_parser.add_argument("formula", help="CNF formula, e.g. '(x|y|z) & (~x|y|~z)'")
    sat_parser.set_defaults(handler=_command_sat)

    count_parser = subparsers.add_parser(
        "count", help="count satisfying assignments via the Theorem 3 identity"
    )
    count_parser.add_argument("formula", help="CNF formula")
    count_parser.set_defaults(handler=_command_count)

    construct_parser = subparsers.add_parser(
        "construct", help="build R_G / phi_G for a formula and print its dimensions"
    )
    construct_parser.add_argument("formula", help="CNF formula")
    construct_parser.add_argument(
        "--show-relation", action="store_true", help="print the full R_G table"
    )
    construct_parser.add_argument(
        "--max-rows", type=int, default=60, help="row cap when printing R_G"
    )
    construct_parser.set_defaults(handler=_command_construct)

    blowup_parser = subparsers.add_parser(
        "blowup", help="print the intermediate-result blow-up table for the R_G family"
    )
    blowup_parser.add_argument(
        "--clauses", type=int, nargs="+", default=[3, 4, 5], help="clause counts to sweep"
    )
    blowup_parser.add_argument(
        "--no-engine",
        action="store_true",
        help="skip the streaming engine's peak-live-rows comparison",
    )
    blowup_parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="ROWS",
        help="row budget for the engine run (hash joins spill to Grace partitions)",
    )
    blowup_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel probe workers for the engine run (default 1 = serial)",
    )
    blowup_parser.set_defaults(handler=_command_blowup)

    explain_parser = subparsers.add_parser(
        "engine-explain",
        help="print the cost-based physical plan the streaming engine would run",
    )
    explain_parser.add_argument(
        "expression",
        nargs="?",
        help="expression text, e.g. 'project[A](R * S)' (omit with --paper)",
    )
    explain_parser.add_argument(
        "--scheme",
        action="append",
        default=[],
        metavar="NAME=ATTRS",
        help="operand scheme, e.g. --scheme 'R=A B C' (repeatable)",
    )
    explain_parser.add_argument(
        "--cardinality",
        action="append",
        default=[],
        metavar="NAME=N",
        help="assumed operand cardinality for the cost model (repeatable)",
    )
    explain_parser.add_argument(
        "--default-cardinality",
        type=int,
        default=100,
        help="assumed cardinality for operands without --cardinality (default 100)",
    )
    explain_parser.add_argument(
        "--prefer-merge",
        action="store_true",
        help="force sort-merge joins instead of hash joins",
    )
    explain_parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="ROWS",
        help="row budget: hash joins become Grace (spill-to-disk) joins",
    )
    explain_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel probe workers when executing (--paper; default 1)",
    )
    explain_parser.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "sampling-based estimation + mid-stream re-planning (with --paper: "
            "plan from reservoir samples, report re-plans and estimate q-error)"
        ),
    )
    explain_parser.add_argument(
        "--paper",
        action="store_true",
        help="explain and execute the paper's worked example on its real relation",
    )
    explain_parser.set_defaults(handler=_command_engine_explain)

    plans_parser = subparsers.add_parser(
        "plans",
        help="serve the demo workload with the plan store on and print what it learned",
    )
    plans_parser.add_argument(
        "--executes",
        type=int,
        default=3,
        help="executions per demo query before reporting (default 3)",
    )
    plans_parser.add_argument(
        "--rows",
        type=int,
        default=600,
        help="rows per relation of the demo serving database (default 600)",
    )
    plans_parser.add_argument(
        "--invalidate",
        action="store_true",
        help="replace relation S mid-run to show scoped invalidation",
    )
    plans_parser.set_defaults(handler=_command_plans)

    trace_parser = subparsers.add_parser(
        "trace",
        help="run the worked example under a span tracer and print EXPLAIN ANALYZE",
    )
    trace_parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="ROWS",
        help="row budget for the engine run (spill spans appear in the report)",
    )
    trace_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel probe workers (default 1 = serial)",
    )
    trace_parser.add_argument(
        "--adaptive",
        action="store_true",
        help="adaptive mode: replan/checkpoint spans appear in the report",
    )
    trace_parser.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="append the structured event log to PATH as JSON Lines",
    )
    trace_parser.set_defaults(handler=_command_trace)

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="run the worked example repeatedly and print Prometheus-format metrics",
    )
    metrics_parser.add_argument(
        "--executes",
        type=int,
        default=5,
        help="how many times to execute the prepared query (default 5)",
    )
    metrics_parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="ROWS",
        help="row budget for the engine runs",
    )
    metrics_parser.set_defaults(handler=_command_metrics)

    serve_parser = subparsers.add_parser(
        "serve",
        help="start the networked serving tier over the demo serving database",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = pick a free port)"
    )
    serve_parser.add_argument(
        "--pool-size", type=int, default=2, help="worker processes (default 2)"
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=16,
        help="admission bound: concurrent requests beyond this are shed with 503",
    )
    serve_parser.add_argument(
        "--total-budget-rows",
        type=int,
        default=None,
        metavar="ROWS",
        help="shared memory-budget pool leased across all requests (default unlimited)",
    )
    serve_parser.add_argument(
        "--session-budget",
        type=int,
        default=None,
        metavar="ROWS",
        help="default per-session engine budget (overridable per request)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine probe workers inside each worker session (default 1)",
    )
    serve_parser.add_argument(
        "--rows",
        type=int,
        default=600,
        help="rows per relation of the demo serving database (default 600)",
    )
    serve_parser.add_argument(
        "--worker-concurrency",
        type=int,
        default=4,
        metavar="N",
        help="concurrent requests multiplexed per worker pipe (default 4; "
        "1 restores the serialized one-at-a-time protocol)",
    )
    serve_parser.add_argument(
        "--cache-size",
        type=int,
        default=256,
        metavar="ENTRIES",
        help="result-cache capacity in entries (default 256; 0 disables it)",
    )
    serve_parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request worker deadline; past it the request fails 504 "
        "and its budget lease is released (default: no deadline)",
    )
    serve_parser.add_argument(
        "--events-dir",
        default=None,
        metavar="DIR",
        help="mirror each worker's event log to DIR/worker-i.jsonl",
    )
    serve_parser.add_argument(
        "--trace",
        action="store_true",
        help="span-trace every execution in the workers",
    )
    serve_parser.set_defaults(handler=_command_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
