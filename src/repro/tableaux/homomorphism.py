"""Homomorphisms between tableaux and Chandra–Merlin containment.

A homomorphism from tableau ``T2`` to tableau ``T1`` is a mapping of the
variables of ``T2`` to cells of ``T1`` that (i) maps every summary cell of
``T2`` to the corresponding summary cell of ``T1`` and (ii) maps every row of
``T2`` onto some row of ``T1`` targeting the same operand.  The classical
Chandra–Merlin theorem then gives *query* containment: ``φ1 ⊆ φ2`` (as
mappings over all databases) iff such a homomorphism exists.

Note the direction and the distinction from the paper's Theorems 4-5: the
paper studies containment *with respect to a fixed database*
(``φ1(R) ⊆ φ2(R)`` for a given R), which is a Π₂ᵖ-complete problem; the
homomorphism test here decides containment over *all* databases, an
NP-complete problem.  Both are implemented so the benchmark harness can
contrast them.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterator, List, Mapping, Optional, Tuple

from ..expressions.ast import Expression
from .tableau import (
    Constant,
    DistinguishedVariable,
    Tableau,
    TableauCell,
    TableauRow,
    tableau_of_expression,
)

__all__ = [
    "find_homomorphism",
    "query_contained_in",
    "query_equivalent",
    "minimize_tableau",
]


def _cells_compatible(source: TableauCell, target: TableauCell) -> bool:
    """Whether a source cell may map to a target cell."""
    if isinstance(source, Constant):
        return isinstance(target, Constant) and source.value == target.value
    # Variables can map to anything (constant or variable).
    return True


def find_homomorphism(source: Tableau, target: Tableau) -> Optional[Dict[TableauCell, TableauCell]]:
    """Find a homomorphism from ``source`` into ``target``.

    Returns the cell mapping, or ``None`` when no homomorphism exists.  The
    summary rows must be over the same target scheme; distinguished cells of
    the source are required to map to the target's summary cells of the same
    attribute (the standard "summary is preserved" condition).
    """
    if source.target_scheme != target.target_scheme:
        return None

    mapping: Dict[TableauCell, TableauCell] = {}
    for attribute in source.target_scheme.names:
        source_cell = source.summary[attribute]
        target_cell = target.summary[attribute]
        if isinstance(source_cell, Constant):
            if not _cells_compatible(source_cell, target_cell):
                return None
            continue
        if source_cell in mapping and mapping[source_cell] != target_cell:
            return None
        mapping[source_cell] = target_cell

    return _extend_homomorphism(list(source.rows), 0, mapping, target)


def _row_match(
    source_row: TableauRow,
    target_row: TableauRow,
    mapping: Dict[TableauCell, TableauCell],
) -> Optional[Dict[TableauCell, TableauCell]]:
    """Try to map one source row onto one target row, extending ``mapping``."""
    if source_row.operand != target_row.operand:
        return None
    # Rows built by tableau_of_expression always cover the operand's full
    # scheme in the scheme's fixed attribute order, but Tableau/TableauRow are
    # public, so hand-built rows may disagree: differing attribute *sets* are
    # a graceful no-match (a mere order difference is fine — cells are looked
    # up by name below).
    if source_row.attributes != target_row.attributes and set(
        source_row.attributes
    ) != set(target_row.attributes):
        return None
    extended = dict(mapping)
    for attribute in source_row.attributes:
        source_cell = source_row.cell(attribute)
        target_cell = target_row.cell(attribute)
        if isinstance(source_cell, Constant):
            if not _cells_compatible(source_cell, target_cell):
                return None
            continue
        if source_cell in extended:
            if extended[source_cell] != target_cell:
                return None
        else:
            extended[source_cell] = target_cell
    return extended


def _extend_homomorphism(
    rows: List[TableauRow],
    index: int,
    mapping: Dict[TableauCell, TableauCell],
    target: Tableau,
) -> Optional[Dict[TableauCell, TableauCell]]:
    if index == len(rows):
        return mapping
    source_row = rows[index]
    for target_row in target.rows:
        extended = _row_match(source_row, target_row, mapping)
        if extended is None:
            continue
        result = _extend_homomorphism(rows, index + 1, extended, target)
        if result is not None:
            return result
    return None


def query_contained_in(first: Expression, second: Expression) -> bool:
    """Decide ``first ⊆ second`` as query mappings (over *all* databases).

    By Chandra–Merlin, this holds iff there is a homomorphism from the tableau
    of ``second`` into the tableau of ``first``.
    """
    source = tableau_of_expression(second)
    target = tableau_of_expression(first)
    return find_homomorphism(source, target) is not None


def query_equivalent(first: Expression, second: Expression) -> bool:
    """Decide query equivalence over all databases (containment both ways)."""
    return query_contained_in(first, second) and query_contained_in(second, first)


def minimize_tableau(tableau: Tableau) -> Tableau:
    """Return an equivalent tableau with a minimal set of rows.

    Repeatedly tries to drop a row: a row may be removed when the reduced
    tableau still admits a homomorphism from the original restricted to... more
    precisely, when there is a homomorphism from the full tableau into the
    reduced one (folding the dropped row onto the remaining rows).  This is
    the classical tableau-minimisation procedure; the result is unique up to
    isomorphism for conjunctive queries.
    """
    current_rows = list(tableau.rows)
    changed = True
    while changed and len(current_rows) > 1:
        changed = False
        full = Tableau(tableau.summary, current_rows, tableau.target_scheme)
        for index in range(len(current_rows)):
            candidate_rows = current_rows[:index] + current_rows[index + 1:]
            candidate = Tableau(tableau.summary, candidate_rows, tableau.target_scheme)
            if find_homomorphism(full, candidate) is not None:
                current_rows = candidate_rows
                changed = True
                break
    return Tableau(tableau.summary, current_rows, tableau.target_scheme)
