"""Tableaux for projection-join expressions.

Proposition 2 of the paper observes that tuple membership ``t ∈ φ(R)`` is in
NP, "alternatively, one may consider the tableau (Aho et al., 1979)
corresponding to φ, and guess a valuation showing that t ∈ φ(R)".  This module
implements that tableau view:

* a :class:`Tableau` is a summary row plus a set of rows over a universe of
  attributes, with each cell holding a distinguished variable, a
  nondistinguished variable, or a constant;
* :func:`tableau_of_expression` converts a projection-join expression into its
  tableau (one row per operand occurrence);
* a *valuation* maps tableau variables to domain values; applying a tableau to
  a database means finding valuations whose rows all land in the corresponding
  relations — which is exactly the NP certificate of Proposition 2.

The tableau is also the bridge to conjunctive-query containment
(Chandra–Merlin): ``φ1 ⊆ φ2`` as query mappings iff there is a homomorphism
from the tableau of ``φ2`` into the tableau of ``φ1``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..algebra.relation import Relation
from ..algebra.schema import RelationScheme
from ..algebra.tuples import RelationTuple
from ..expressions.ast import Expression, ExpressionError, Join, Operand, Projection

__all__ = [
    "TableauCell",
    "DistinguishedVariable",
    "NondistinguishedVariable",
    "Constant",
    "TableauRow",
    "Tableau",
    "tableau_of_expression",
]


@dataclass(frozen=True)
class DistinguishedVariable:
    """A variable appearing in the summary row (an output attribute)."""

    attribute: str

    def __str__(self) -> str:
        return f"a_{self.attribute}"


@dataclass(frozen=True)
class NondistinguishedVariable:
    """A variable not visible in the summary (projected away)."""

    index: int
    attribute: str

    def __str__(self) -> str:
        return f"b{self.index}_{self.attribute}"


@dataclass(frozen=True)
class Constant:
    """A constant cell (not produced by the expression translation, but usable)."""

    value: Hashable

    def __str__(self) -> str:
        return repr(self.value)


TableauCell = Union[DistinguishedVariable, NondistinguishedVariable, Constant]


@dataclass(frozen=True)
class TableauRow:
    """One row of a tableau: the operand it targets and its cells.

    ``operand`` names the relation the row must map into; ``cells`` maps each
    attribute of that operand's scheme to a tableau cell.
    """

    operand: str
    cells: Tuple[Tuple[str, TableauCell], ...]

    def cell(self, attribute: str) -> TableauCell:
        """Return the cell for ``attribute``."""
        for name, value in self.cells:
            if name == attribute:
                return value
        raise KeyError(attribute)

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attributes this row covers, in order."""
        return tuple(name for name, _ in self.cells)

    def variables(self) -> Tuple[TableauCell, ...]:
        """The non-constant cells of the row."""
        return tuple(
            cell for _, cell in self.cells if not isinstance(cell, Constant)
        )


class Tableau:
    """A tableau: summary row + rows, each row targeted at an operand relation."""

    def __init__(
        self,
        summary: Mapping[str, TableauCell],
        rows: Sequence[TableauRow],
        target_scheme: RelationScheme,
    ):
        self._summary: Dict[str, TableauCell] = dict(summary)
        self._rows: Tuple[TableauRow, ...] = tuple(rows)
        self._target_scheme = target_scheme
        missing = set(target_scheme.names) - set(self._summary)
        if missing:
            raise ExpressionError(
                f"summary row misses target attributes {sorted(missing)}"
            )

    # -- accessors -------------------------------------------------------

    @property
    def summary(self) -> Dict[str, TableauCell]:
        """The summary row: one cell per target attribute."""
        return dict(self._summary)

    @property
    def rows(self) -> Tuple[TableauRow, ...]:
        """The tableau rows."""
        return self._rows

    @property
    def target_scheme(self) -> RelationScheme:
        """The scheme of the expression the tableau represents."""
        return self._target_scheme

    def operand_names(self) -> FrozenSet[str]:
        """The operand relation names the rows refer to."""
        return frozenset(row.operand for row in self._rows)

    def all_variables(self) -> FrozenSet[TableauCell]:
        """Every variable cell appearing in the summary or any row."""
        variables: set = set()
        for cell in self._summary.values():
            if not isinstance(cell, Constant):
                variables.add(cell)
        for row in self._rows:
            for _, cell in row.cells:
                if not isinstance(cell, Constant):
                    variables.add(cell)
        return frozenset(variables)

    def __repr__(self) -> str:
        return (
            f"Tableau(target={self._target_scheme}, rows={len(self._rows)}, "
            f"variables={len(self.all_variables())})"
        )

    def to_text(self) -> str:
        """A readable multi-line rendering of the tableau."""
        lines = ["summary: " + ", ".join(
            f"{name}={self._summary[name]}" for name in self._target_scheme.names
        )]
        for index, row in enumerate(self._rows):
            rendered = ", ".join(f"{name}={cell}" for name, cell in row.cells)
            lines.append(f"row {index} -> {row.operand}: {rendered}")
        return "\n".join(lines)

    # -- semantics ---------------------------------------------------------

    def satisfying_valuations(
        self, relations: Mapping[str, Relation]
    ) -> Iterator[Dict[TableauCell, Hashable]]:
        """Yield every valuation of the tableau variables consistent with ``relations``.

        A valuation maps each variable to a value such that every row, once
        its cells are replaced by their values, is a tuple of the relation the
        row targets.  Enumeration proceeds row by row with backtracking —
        worst-case exponential, as the NP-hardness results promise.  The row
        to branch on is chosen dynamically: always the remaining row with the
        most cells already pinned (constants or bound variables), which prunes
        hopeless branches early and makes the search order deterministic
        instead of a set-iteration-order lottery.
        """
        yield from self._extend({}, list(self._rows), relations)

    @staticmethod
    def _most_constrained(
        rows: List[TableauRow], valuation: Dict[TableauCell, Hashable]
    ) -> int:
        """Index of the row with the most constant/already-bound cells."""
        best_index = 0
        best_score = -1
        for index, row in enumerate(rows):
            score = sum(
                1
                for _, cell in row.cells
                if isinstance(cell, Constant) or cell in valuation
            )
            if score > best_score:
                best_score = score
                best_index = index
        return best_index

    def _extend(
        self,
        valuation: Dict[TableauCell, Hashable],
        remaining: List[TableauRow],
        relations: Mapping[str, Relation],
    ) -> Iterator[Dict[TableauCell, Hashable]]:
        if not remaining:
            yield dict(valuation)
            return
        choice = self._most_constrained(remaining, valuation)
        row = remaining[choice]
        rest = remaining[:choice] + remaining[choice + 1:]
        relation = relations[row.operand]
        for tup in relation:
            extended = self._match_row(row, tup, valuation)
            if extended is not None:
                yield from self._extend(extended, rest, relations)

    @staticmethod
    def _match_row(
        row: TableauRow,
        tup: RelationTuple,
        valuation: Dict[TableauCell, Hashable],
    ) -> Optional[Dict[TableauCell, Hashable]]:
        extended = dict(valuation)
        for attribute, cell in row.cells:
            value = tup[attribute]
            if isinstance(cell, Constant):
                if cell.value != value:
                    return None
                continue
            if cell in extended:
                if extended[cell] != value:
                    return None
            else:
                extended[cell] = value
        return extended

    def produces_tuple(
        self, candidate: RelationTuple, relations: Mapping[str, Relation]
    ) -> Optional[Dict[TableauCell, Hashable]]:
        """Return a valuation witnessing ``candidate ∈ φ(relations)`` or ``None``.

        This is the Proposition 2 certificate check: the summary cells are
        pinned to the candidate tuple's values, and a consistent valuation of
        the remaining variables is searched for.
        """
        if candidate.scheme != self._target_scheme:
            return None
        pinned: Dict[TableauCell, Hashable] = {}
        for name in self._target_scheme.names:
            cell = self._summary[name]
            value = candidate[name]
            if isinstance(cell, Constant):
                if cell.value != value:
                    return None
            elif cell in pinned and pinned[cell] != value:
                return None
            else:
                pinned[cell] = value
        for valuation in self._extend(pinned, list(self._rows), relations):
            return valuation
        return None

    def evaluate(self, relations: Mapping[str, Relation]) -> Relation:
        """Compute the relation defined by the tableau on ``relations``.

        Equivalent to evaluating the original expression; used by tests to
        check the expression-to-tableau translation.
        """
        tuples: List[RelationTuple] = []
        for valuation in self.satisfying_valuations(relations):
            values: Dict[str, Hashable] = {}
            for name in self._target_scheme.names:
                cell = self._summary[name]
                values[name] = (
                    cell.value if isinstance(cell, Constant) else valuation[cell]
                )
            tuples.append(RelationTuple(self._target_scheme, values))
        return Relation(self._target_scheme, tuples)


def tableau_of_expression(expression: Expression) -> Tableau:
    """Translate a projection-join expression into an equivalent tableau.

    Each occurrence of an operand becomes one row.  Attributes visible in the
    expression's target scheme become distinguished variables; attributes
    projected away become nondistinguished variables.  Join merges the rows of
    its operands and identifies the variables of shared *visible* attributes —
    achieved here by naming variables after the attribute and the scope in
    which they were introduced.
    """
    counter = itertools.count()
    target = expression.target_scheme()
    summary: Dict[str, TableauCell] = {
        name: DistinguishedVariable(name) for name in target.names
    }
    rows = _rows_of(expression, {name: summary[name] for name in target.names}, counter)
    return Tableau(summary, rows, target)


def _rows_of(
    node: Expression,
    visible: Mapping[str, TableauCell],
    counter: "itertools.count",
) -> List[TableauRow]:
    """Build rows for ``node``; ``visible`` maps attribute -> cell for attributes
    whose identity is shared with the context above ``node``."""
    if isinstance(node, Operand):
        cells: List[Tuple[str, TableauCell]] = []
        for attribute in node.scheme.names:
            if attribute in visible:
                cells.append((attribute, visible[attribute]))
            else:
                cells.append(
                    (attribute, NondistinguishedVariable(next(counter), attribute))
                )
        return [TableauRow(node.name, tuple(cells))]

    if isinstance(node, Projection):
        # Attributes outside the projection target lose their connection to
        # the context; attributes inside keep the context's cells.  Attributes
        # of the child that are not in the context but *are* shared between
        # sub-expressions of the child are handled by the recursive call on
        # the child (a Join) itself.
        child_visible = {
            attribute: cell
            for attribute, cell in visible.items()
            if attribute in node.target.name_set
        }
        return _rows_of(node.child, child_visible, counter)

    if isinstance(node, Join):
        # Attributes shared by two or more join operands must be identified,
        # even if the context does not see them: create a cell for every
        # attribute visible to the join (context cells take precedence).
        appearance: Dict[str, int] = {}
        for part in node.parts:
            for attribute in part.target_scheme().names:
                appearance[attribute] = appearance.get(attribute, 0) + 1
        join_visible: Dict[str, TableauCell] = dict(visible)
        for attribute, count in appearance.items():
            if count > 1 and attribute not in join_visible:
                join_visible[attribute] = NondistinguishedVariable(
                    next(counter), attribute
                )
        rows: List[TableauRow] = []
        for part in node.parts:
            part_attributes = set(part.target_scheme().names)
            part_visible = {
                attribute: cell
                for attribute, cell in join_visible.items()
                if attribute in part_attributes
            }
            rows.extend(_rows_of(part, part_visible, counter))
        return rows

    raise ExpressionError(f"unknown expression node {node!r}")
