"""Tableaux for projection-join expressions and Chandra–Merlin containment.

Implements the certificate machinery behind Proposition 2 (tuple membership is
in NP) and the query-containment-over-all-databases test that contrasts with
the paper's fixed-database Π₂ᵖ-complete containment problems.
"""

from .homomorphism import (
    find_homomorphism,
    minimize_tableau,
    query_contained_in,
    query_equivalent,
)
from .tableau import (
    Constant,
    DistinguishedVariable,
    NondistinguishedVariable,
    Tableau,
    TableauCell,
    TableauRow,
    tableau_of_expression,
)

__all__ = [
    "Tableau",
    "TableauRow",
    "TableauCell",
    "DistinguishedVariable",
    "NondistinguishedVariable",
    "Constant",
    "tableau_of_expression",
    "find_homomorphism",
    "query_contained_in",
    "query_equivalent",
    "minimize_tableau",
]
