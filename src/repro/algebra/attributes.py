"""Attributes and domains of the relational model.

The paper (Section 2.1) assumes every attribute ``A`` has an associated domain
``Dom(A)`` and that domains of distinct attributes are disjoint.  In this
implementation domains are optional: when a relation is built without explicit
domains, any hashable Python value is accepted.  When a :class:`Domain` is
attached to an :class:`Attribute`, tuple construction validates membership.

Attributes compare by name only.  This keeps schemes cheap (plain tuples of
attributes) while still letting the construction modules attach descriptive
domains for documentation and validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Iterable, Optional

from .errors import DomainError

__all__ = ["Attribute", "Domain", "as_attribute", "attribute_names"]


@dataclass(frozen=True)
class Domain:
    """A finite (or open) set of admissible values for an attribute.

    Parameters
    ----------
    name:
        Human-readable label, e.g. ``"bool"`` or ``"clause-marker"``.
    values:
        The admissible values.  ``None`` means the domain is open: any
        hashable value is accepted.
    """

    name: str
    values: Optional[FrozenSet[Hashable]] = None

    @classmethod
    def of(cls, name: str, values: Iterable[Hashable]) -> "Domain":
        """Build a closed domain from an iterable of values."""
        return cls(name=name, values=frozenset(values))

    @classmethod
    def open(cls, name: str = "any") -> "Domain":
        """Build an open domain that accepts every hashable value."""
        return cls(name=name, values=None)

    @property
    def is_open(self) -> bool:
        """Return ``True`` when the domain places no restriction on values."""
        return self.values is None

    def __contains__(self, value: Hashable) -> bool:
        if self.values is None:
            return True
        return value in self.values

    def check(self, value: Hashable, attribute_name: str = "?") -> None:
        """Raise :class:`DomainError` if ``value`` is not in the domain."""
        if value not in self:
            raise DomainError(
                f"value {value!r} is not in domain {self.name!r} "
                f"of attribute {attribute_name!r}"
            )

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.values is None:
            return f"{self.name}(*)"
        return f"{self.name}({{{', '.join(sorted(map(repr, self.values)))}}})"


@dataclass(frozen=True, order=True)
class Attribute:
    """A named column of a relation scheme.

    Two attributes are equal exactly when their names are equal; the optional
    domain is metadata and does not take part in equality or hashing, mirroring
    the paper's convention that an attribute is identified by its label.
    """

    name: str
    domain: Optional[Domain] = field(default=None, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be a non-empty string")

    def with_domain(self, domain: Domain) -> "Attribute":
        """Return a copy of this attribute carrying ``domain``."""
        return Attribute(self.name, domain)

    def renamed(self, new_name: str) -> "Attribute":
        """Return an attribute with a new name but the same domain."""
        return Attribute(new_name, self.domain)

    def accepts(self, value: Hashable) -> bool:
        """Return whether ``value`` is admissible for this attribute."""
        if self.domain is None:
            return True
        return value in self.domain

    def check_value(self, value: Hashable) -> None:
        """Raise :class:`DomainError` if ``value`` violates the domain."""
        if self.domain is not None:
            self.domain.check(value, self.name)

    def __str__(self) -> str:
        return self.name


def as_attribute(item: "str | Attribute") -> Attribute:
    """Coerce a string or attribute into an :class:`Attribute`."""
    if isinstance(item, Attribute):
        return item
    if isinstance(item, str):
        return Attribute(item)
    raise TypeError(f"cannot interpret {item!r} as an attribute")


def attribute_names(items: Iterable["str | Attribute"]) -> "tuple[str, ...]":
    """Return the names of a sequence of attributes or strings."""
    return tuple(as_attribute(item).name for item in items)
