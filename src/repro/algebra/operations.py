"""Free-function forms of the relational operations.

The paper uses the operator notation ``π_Y(R)`` for projection and ``R1 * R2``
for natural join.  These functions provide the same vocabulary over
:class:`~repro.algebra.relation.Relation` objects, including the n-ary join
``*π_{Y_i}(R)`` that shows up throughout Section 3, together with the
remaining classical set operations.
"""

from __future__ import annotations

from functools import reduce
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from .errors import JoinError
from .relation import Relation
from .schema import RelationScheme, SchemeLike, as_scheme
from .tuples import RelationTuple

__all__ = [
    "project",
    "natural_join",
    "join_all",
    "project_join",
    "select",
    "union",
    "difference",
    "intersection",
    "rename",
    "cartesian_product",
    "divide",
    "semijoin",
    "estimate_join_size",
    "greedy_join",
]

SizeEstimator = Callable[[Relation, Relation], float]


def project(relation: Relation, target: SchemeLike) -> Relation:
    """Projection ``π_Y(R)``."""
    return relation.project(target)


def natural_join(left: Relation, right: Relation) -> Relation:
    """Natural join ``R1 * R2``."""
    return left.natural_join(right)


def estimate_join_size(left: Relation, right: Relation) -> float:
    """Estimate ``|left * right|``: the size product shrunk by key selectivity.

    Uses distinct-value counts on each shared attribute as a selectivity
    proxy (the classical System-R independence assumption).  Disjoint schemes
    estimate as the full cartesian product.  The distinct counts come from
    the statistics catalog cached on each relation
    (:meth:`~repro.algebra.relation.Relation.stats`), so repeated estimates
    against the same relation — the greedy-ordering regime — never re-scan a
    column.
    """
    common = left.scheme.intersection(right.scheme)
    size = len(left) * len(right)
    if len(common) == 0 or size == 0:
        return float(size)
    left_stats = left.stats()
    right_stats = right.stats()
    selectivity = 1.0
    for attribute in common.names:
        selectivity /= max(
            left_stats.distinct(attribute), right_stats.distinct(attribute), 1
        )
    return size * selectivity


def greedy_join(
    relations: Sequence[Relation],
    estimator: Optional[SizeEstimator] = None,
    observe: Optional[Callable[[Relation, int], None]] = None,
) -> Relation:
    """Join relations pairwise, picking the cheapest estimated pair each time.

    Pairwise estimates are memoised across iterations: the first step scores
    all ``k(k-1)/2`` pairs, and each later step only scores the pairs
    involving the previous step's result — an O(k) refresh instead of the
    former O(k²) full recomputation per step.  The estimator stays pluggable
    (``(left, right) -> float``); the default reads the statistics catalog
    via :func:`estimate_join_size`.

    ``observe(joined, remaining)`` is called after each pairwise join with the
    new intermediate and the number of operands that remained before it (the
    optimiser uses this to record its evaluation trace).
    """
    if not relations:
        raise JoinError("greedy_join requires at least one relation")
    estimate = estimator or estimate_join_size
    nodes: List[Optional[Relation]] = list(relations)
    alive: List[int] = list(range(len(nodes)))
    estimates: Dict[Tuple[int, int], float] = {}

    def pairwise(a: int, b: int) -> float:
        key = (a, b) if a < b else (b, a)
        cached = estimates.get(key)
        if cached is None:
            cached = estimates[key] = estimate(nodes[a], nodes[b])
        return cached

    while len(alive) > 1:
        best_pair: Optional[Tuple[int, int]] = None
        best_estimate: Optional[float] = None
        for position, a in enumerate(alive):
            for b in alive[position + 1 :]:
                candidate = pairwise(a, b)
                if best_estimate is None or candidate < best_estimate:
                    best_estimate = candidate
                    best_pair = (a, b)
        a, b = best_pair  # type: ignore[misc]
        joined = nodes[a].natural_join(nodes[b])
        if observe is not None:
            observe(joined, len(alive))
        alive = [index for index in alive if index not in (a, b)]
        # Drop the consumed relations (indices stay stable for the memo
        # keys); retaining them would keep every intermediate alive for the
        # whole join — a real memory cost on exactly the blow-up workloads.
        nodes[a] = nodes[b] = None  # type: ignore[call-overload]
        nodes.append(joined)
        alive.append(len(nodes) - 1)
    return nodes[alive[0]]


def join_all(
    relations: Sequence[Relation],
    order: str = "as-given",
    estimator: Optional[SizeEstimator] = None,
) -> Relation:
    """n-ary natural join ``R1 * R2 * ... * Rk``.

    The natural join is associative and commutative, so the association order
    only affects intermediate sizes, not the result.  ``order`` selects it:

    * ``"as-given"`` (default) — left-associated in input order, exactly the
      naive regime the paper analyses;
    * ``"greedy"`` — repeatedly join the pair with the smallest estimated
      result (per ``estimator``, default :func:`estimate_join_size`), the
      ordering the optimiser uses to dodge the intermediate blow-up.

    Every pairwise join reuses the compiled plan cached for its scheme pair,
    so an expression's repeated sub-joins compile their scheme-level work
    only once.
    """
    relations = list(relations)
    if not relations:
        raise JoinError("join_all requires at least one relation")
    if order == "as-given":
        return reduce(natural_join, relations)
    if order == "greedy":
        return greedy_join(relations, estimator)
    raise JoinError(f"unknown join order {order!r}; expected 'as-given' or 'greedy'")


def project_join(relation: Relation, targets: Iterable[SchemeLike]) -> Relation:
    """The paper's recurring query shape ``*π_{Y_i}(R)``.

    Projects ``relation`` onto each scheme in ``targets`` and joins all the
    projections.  This is exactly the "project-join mapping" of the universal
    relation literature cited in the paper.
    """
    schemes = [as_scheme(t) for t in targets]
    if not schemes:
        raise JoinError("project_join requires at least one projection scheme")
    return join_all([relation.project(s) for s in schemes])


def select(relation: Relation, predicate: Callable[[RelationTuple], bool]) -> Relation:
    """Selection ``σ_p(R)``."""
    return relation.select(predicate)


def union(left: Relation, right: Relation) -> Relation:
    """Set union of relations over the same scheme."""
    return left.union(right)


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference of relations over the same scheme."""
    return left.difference(right)


def intersection(left: Relation, right: Relation) -> Relation:
    """Set intersection of relations over the same scheme."""
    return left.intersection(right)


def rename(relation: Relation, mapping: Dict[str, str]) -> Relation:
    """Attribute renaming ``ρ``."""
    return relation.rename(mapping)


def cartesian_product(left: Relation, right: Relation) -> Relation:
    """Cartesian product of relations over disjoint schemes.

    The natural join of relations with disjoint schemes *is* their cartesian
    product; this wrapper simply checks the disjointness precondition so the
    intent is explicit at call sites (the Theorem 1 construction relies on it).
    """
    if not left.scheme.is_disjoint_from(right.scheme):
        shared = sorted(left.scheme.name_set & right.scheme.name_set)
        raise JoinError(
            f"cartesian_product requires disjoint schemes; shared attributes: {shared}"
        )
    return left.natural_join(right)


def semijoin(left: Relation, right: Relation) -> Relation:
    """Semijoin ``R1 ⋉ R2``: tuples of ``left`` that join with some tuple of ``right``.

    Runs positionally: the shared-attribute key positions are read off each
    operand's scheme index once, and membership is tested on plain value
    tuples rather than materialised projected tuples.
    """
    common = left.scheme.intersection(right.scheme)
    if len(common) == 0:
        return left if not right.is_empty() else Relation.empty(left.scheme)
    left_picks = tuple(left.scheme.index[name] for name in common.names)
    right_picks = tuple(right.scheme.index[name] for name in common.names)
    right_keys = {tuple(row[i] for i in right_picks) for row in right.rows}
    kept = frozenset(
        row for row in left.rows if tuple(row[i] for i in left_picks) in right_keys
    )
    return Relation._from_trusted(left.scheme, kept)


def divide(dividend: Relation, divisor: Relation) -> Relation:
    """Relational division ``R ÷ S``.

    Returns the tuples ``t`` over the scheme ``scheme(R) - scheme(S)`` such
    that ``{t} x S ⊆ R``.  Included for completeness of the algebra substrate;
    the paper itself only needs projection and join.
    """
    quotient_scheme = dividend.scheme.difference(divisor.scheme)
    if len(quotient_scheme) == len(dividend.scheme):
        raise JoinError("divisor scheme must share attributes with the dividend")
    candidates = dividend.project(quotient_scheme)
    if divisor.is_empty():
        return candidates
    divisor_part = divisor.project(dividend.scheme.intersection(divisor.scheme))
    kept: List[RelationTuple] = []
    for candidate in candidates:
        needed = {candidate.joined(d) for d in divisor_part}
        required_scheme = quotient_scheme.union(divisor_part.scheme)
        present = {t.project(required_scheme) for t in dividend}
        if needed <= present:
            kept.append(candidate)
    return Relation(quotient_scheme, kept)
