"""Free-function forms of the relational operations.

The paper uses the operator notation ``π_Y(R)`` for projection and ``R1 * R2``
for natural join.  These functions provide the same vocabulary over
:class:`~repro.algebra.relation.Relation` objects, including the n-ary join
``*π_{Y_i}(R)`` that shows up throughout Section 3, together with the
remaining classical set operations.
"""

from __future__ import annotations

from functools import reduce
from typing import Callable, Dict, Hashable, Iterable, List, Sequence

from .errors import JoinError
from .relation import Relation
from .schema import RelationScheme, SchemeLike, as_scheme
from .tuples import RelationTuple

__all__ = [
    "project",
    "natural_join",
    "join_all",
    "project_join",
    "select",
    "union",
    "difference",
    "intersection",
    "rename",
    "cartesian_product",
    "divide",
    "semijoin",
]


def project(relation: Relation, target: SchemeLike) -> Relation:
    """Projection ``π_Y(R)``."""
    return relation.project(target)


def natural_join(left: Relation, right: Relation) -> Relation:
    """Natural join ``R1 * R2``."""
    return left.natural_join(right)


def join_all(relations: Sequence[Relation]) -> Relation:
    """n-ary natural join ``R1 * R2 * ... * Rk`` (left-associated).

    The natural join is associative and commutative, so the association order
    only affects intermediate sizes, not the result.
    """
    relations = list(relations)
    if not relations:
        raise JoinError("join_all requires at least one relation")
    return reduce(natural_join, relations)


def project_join(relation: Relation, targets: Iterable[SchemeLike]) -> Relation:
    """The paper's recurring query shape ``*π_{Y_i}(R)``.

    Projects ``relation`` onto each scheme in ``targets`` and joins all the
    projections.  This is exactly the "project-join mapping" of the universal
    relation literature cited in the paper.
    """
    schemes = [as_scheme(t) for t in targets]
    if not schemes:
        raise JoinError("project_join requires at least one projection scheme")
    return join_all([relation.project(s) for s in schemes])


def select(relation: Relation, predicate: Callable[[RelationTuple], bool]) -> Relation:
    """Selection ``σ_p(R)``."""
    return relation.select(predicate)


def union(left: Relation, right: Relation) -> Relation:
    """Set union of relations over the same scheme."""
    return left.union(right)


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference of relations over the same scheme."""
    return left.difference(right)


def intersection(left: Relation, right: Relation) -> Relation:
    """Set intersection of relations over the same scheme."""
    return left.intersection(right)


def rename(relation: Relation, mapping: Dict[str, str]) -> Relation:
    """Attribute renaming ``ρ``."""
    return relation.rename(mapping)


def cartesian_product(left: Relation, right: Relation) -> Relation:
    """Cartesian product of relations over disjoint schemes.

    The natural join of relations with disjoint schemes *is* their cartesian
    product; this wrapper simply checks the disjointness precondition so the
    intent is explicit at call sites (the Theorem 1 construction relies on it).
    """
    if not left.scheme.is_disjoint_from(right.scheme):
        shared = sorted(left.scheme.name_set & right.scheme.name_set)
        raise JoinError(
            f"cartesian_product requires disjoint schemes; shared attributes: {shared}"
        )
    return left.natural_join(right)


def semijoin(left: Relation, right: Relation) -> Relation:
    """Semijoin ``R1 ⋉ R2``: tuples of ``left`` that join with some tuple of ``right``."""
    common = left.scheme.intersection(right.scheme)
    if len(common) == 0:
        return left if not right.is_empty() else Relation.empty(left.scheme)
    right_keys = {t.project(common) for t in right}
    return left.select(lambda t: t.project(common) in right_keys)


def divide(dividend: Relation, divisor: Relation) -> Relation:
    """Relational division ``R ÷ S``.

    Returns the tuples ``t`` over the scheme ``scheme(R) - scheme(S)`` such
    that ``{t} x S ⊆ R``.  Included for completeness of the algebra substrate;
    the paper itself only needs projection and join.
    """
    quotient_scheme = dividend.scheme.difference(divisor.scheme)
    if len(quotient_scheme) == len(dividend.scheme):
        raise JoinError("divisor scheme must share attributes with the dividend")
    candidates = dividend.project(quotient_scheme)
    if divisor.is_empty():
        return candidates
    divisor_part = divisor.project(dividend.scheme.intersection(divisor.scheme))
    kept: List[RelationTuple] = []
    for candidate in candidates:
        needed = {candidate.joined(d) for d in divisor_part}
        required_scheme = quotient_scheme.union(divisor_part.scheme)
        present = {t.project(required_scheme) for t in dividend}
        if needed <= present:
            kept.append(candidate)
    return Relation(quotient_scheme, kept)
