"""Tuples of the relational model.

An ``X``-tuple is a mapping from the attributes of a scheme ``X`` to values
(paper, Section 2.1).  :class:`RelationTuple` is an immutable, hashable mapping
whose keys are exactly the attribute names of its scheme.  Projection of a
tuple onto a sub-scheme (``t[Y]`` in the paper) is :meth:`RelationTuple.project`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Tuple, Union

from .attributes import Attribute
from .errors import ProjectionError, TupleSchemeMismatch
from .schema import RelationScheme, SchemeLike, as_scheme

__all__ = ["RelationTuple", "as_tuple"]

AttributeLike = Union[str, Attribute]


class RelationTuple(Mapping[str, Hashable]):
    """An immutable tuple over a relation scheme.

    The tuple behaves as a read-only mapping from attribute name to value and
    is hashable, so relations can store tuples in plain Python sets.
    """

    __slots__ = ("_scheme", "_values", "_hash")

    def __init__(self, scheme: SchemeLike, values: Mapping[str, Hashable]):
        scheme = as_scheme(scheme)
        provided = set(values)
        expected = set(scheme.name_set)
        if provided != expected:
            missing = sorted(expected - provided)
            extra = sorted(provided - expected)
            raise TupleSchemeMismatch(
                f"tuple values do not match scheme {scheme}: "
                f"missing={missing} extra={extra}"
            )
        for attr in scheme:
            attr.check_value(values[attr.name])
        self._scheme = scheme
        self._values: Tuple[Hashable, ...] = tuple(values[name] for name in scheme.names)
        self._hash = hash((scheme.name_set, frozenset(values.items())))

    # -- constructors -------------------------------------------------

    @classmethod
    def from_values(cls, scheme: SchemeLike, values: Iterable[Hashable]) -> "RelationTuple":
        """Build a tuple from values listed in the scheme's presentation order."""
        scheme = as_scheme(scheme)
        values = tuple(values)
        if len(values) != len(scheme):
            raise TupleSchemeMismatch(
                f"expected {len(scheme)} values for scheme {scheme}, got {len(values)}"
            )
        return cls(scheme, dict(zip(scheme.names, values)))

    # -- mapping protocol ---------------------------------------------

    @property
    def scheme(self) -> RelationScheme:
        """The relation scheme this tuple is defined over."""
        return self._scheme

    def __getitem__(self, key: AttributeLike) -> Hashable:
        name = key.name if isinstance(key, Attribute) else key
        try:
            index = self._scheme.names.index(name)
        except ValueError:
            raise KeyError(name) from None
        return self._values[index]

    def __iter__(self) -> Iterator[str]:
        return iter(self._scheme.names)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: object) -> bool:
        name = key.name if isinstance(key, Attribute) else key
        return name in self._scheme

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RelationTuple):
            return (
                self._scheme.name_set == other._scheme.name_set
                and dict(self) == dict(other)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={self[n]!r}" for n in self._scheme.names)
        return f"RelationTuple({inner})"

    # -- relational operations ----------------------------------------

    def as_dict(self) -> Dict[str, Hashable]:
        """Return a plain mutable dict copy of the tuple."""
        return dict(zip(self._scheme.names, self._values))

    def values_in_order(self, names: Iterable[str] = None) -> Tuple[Hashable, ...]:
        """Return values in the order of ``names`` (default: scheme order)."""
        if names is None:
            return self._values
        return tuple(self[name] for name in names)

    def project(self, target: SchemeLike) -> "RelationTuple":
        """Project (restrict) this tuple onto the sub-scheme ``target``.

        This is ``t[Y]`` in the paper's notation.  Raises
        :class:`ProjectionError` if ``target`` is not a subset of the tuple's
        scheme.
        """
        target_scheme = as_scheme(target)
        if not target_scheme.is_subscheme_of(self._scheme):
            missing = sorted(target_scheme.name_set - self._scheme.name_set)
            raise ProjectionError(
                f"cannot project tuple over {self._scheme} onto {target_scheme}: "
                f"missing attributes {missing}"
            )
        restricted = self._scheme.restrict(target_scheme.names)
        return RelationTuple(restricted, {n: self[n] for n in restricted.names})

    def joins_with(self, other: "RelationTuple") -> bool:
        """Return whether this tuple agrees with ``other`` on common attributes."""
        common = self._scheme.name_set & other._scheme.name_set
        return all(self[name] == other[name] for name in common)

    def joined(self, other: "RelationTuple") -> "RelationTuple":
        """Return the natural join of two joinable tuples.

        Raises :class:`TupleSchemeMismatch` if the tuples disagree on a common
        attribute.
        """
        if not self.joins_with(other):
            raise TupleSchemeMismatch(
                f"tuples disagree on common attributes: {self!r} vs {other!r}"
            )
        joined_scheme = self._scheme.union(other._scheme)
        values = self.as_dict()
        values.update(other.as_dict())
        return RelationTuple(joined_scheme, values)

    def extended(self, extra: Mapping[str, Hashable]) -> "RelationTuple":
        """Return a new tuple with additional attribute/value pairs appended."""
        overlapping = set(extra) & set(self._scheme.name_set)
        if overlapping:
            raise TupleSchemeMismatch(
                f"cannot extend tuple with already-present attributes {sorted(overlapping)}"
            )
        new_scheme = self._scheme.union(RelationScheme(extra.keys()))
        values = self.as_dict()
        values.update(extra)
        return RelationTuple(new_scheme, values)

    def renamed(self, mapping: Dict[str, str]) -> "RelationTuple":
        """Return a tuple over the renamed scheme with the same values."""
        new_scheme = self._scheme.renamed(mapping)
        values = {}
        for attr in self._scheme:
            new_name = mapping.get(attr.name, attr.name)
            values[new_name] = self[attr.name]
        return RelationTuple(new_scheme, values)


def as_tuple(scheme: SchemeLike, value: Union[RelationTuple, Mapping[str, Hashable], Iterable[Hashable]]) -> RelationTuple:
    """Coerce mappings or value sequences into a :class:`RelationTuple`."""
    scheme = as_scheme(scheme)
    if isinstance(value, RelationTuple):
        if value.scheme != scheme:
            raise TupleSchemeMismatch(
                f"tuple over {value.scheme} used where scheme {scheme} expected"
            )
        return value
    if isinstance(value, Mapping):
        return RelationTuple(scheme, value)
    return RelationTuple.from_values(scheme, value)
