"""Tuples of the relational model.

An ``X``-tuple is a mapping from the attributes of a scheme ``X`` to values
(paper, Section 2.1).  :class:`RelationTuple` is an immutable, hashable mapping
whose keys are exactly the attribute names of its scheme.  Projection of a
tuple onto a sub-scheme (``t[Y]`` in the paper) is :meth:`RelationTuple.project`.

Storage is *positional*: values live in a plain tuple aligned with the
scheme's presentation order, attribute access goes through the scheme's
cached name -> position index in O(1), and the hash is precomputed once from
the values listed in sorted-name order, so tuples over differently-ordered
presentations of the same scheme hash (and compare) equal.

Two construction paths exist:

* the public constructors (``__init__``, :meth:`from_values`, :func:`as_tuple`)
  validate the value set against the scheme and any attribute domains;
* the trusted constructor :meth:`RelationTuple._from_trusted` skips all
  validation.  It is reserved for values produced *by* algebra operations out
  of already-validated tuples (join, project, rename, ...), where the scheme
  alignment is guaranteed by the compiled plan that produced the values.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple, Union

from ..perf.counters import kernel_counters
from ..perf.plancache import ProjectPlan, project_plan_cache
from .attributes import Attribute
from .errors import ProjectionError, TupleSchemeMismatch
from .schema import RelationScheme, SchemeLike, as_scheme

__all__ = ["RelationTuple", "as_tuple"]

AttributeLike = Union[str, Attribute]

_COUNTERS = kernel_counters()


def _project_plan(scheme: RelationScheme, target: RelationScheme) -> ProjectPlan:
    """Return (compiling on miss) the pick-list plan projecting ``scheme`` onto ``target``.

    The caller must already have verified ``target.is_subscheme_of(scheme)``.
    The plan's ``target_scheme`` preserves the *source* scheme's attribute
    objects (with their domains), restricted to the target's names in the
    target's order — the same scheme :meth:`RelationScheme.restrict` builds.
    """
    cache = project_plan_cache()
    key = (scheme.fingerprint, target.names)
    plan = cache.get(key)
    if plan is not None:
        _COUNTERS.project_plan_hits += 1
        return plan
    _COUNTERS.project_plan_misses += 1
    restricted = scheme.restrict(target.names)
    index = scheme.index
    picks = tuple(index[name] for name in restricted.names)
    plan = ProjectPlan(target_scheme=restricted, picks=picks)
    cache.put(key, plan)
    return plan


class RelationTuple(Mapping[str, Hashable]):
    """An immutable tuple over a relation scheme.

    The tuple behaves as a read-only mapping from attribute name to value and
    is hashable, so relations can store tuples in plain Python sets.  Values
    are stored positionally in the scheme's presentation order with a
    precomputed order-independent hash.
    """

    __slots__ = ("_scheme", "_values", "_hash")

    def __init__(self, scheme: SchemeLike, values: Mapping[str, Hashable]):
        scheme = as_scheme(scheme)
        if len(values) != len(scheme.names) or set(values) != scheme.name_set:
            provided = set(values)
            expected = set(scheme.name_set)
            missing = sorted(expected - provided)
            extra = sorted(provided - expected)
            raise TupleSchemeMismatch(
                f"tuple values do not match scheme {scheme}: "
                f"missing={missing} extra={extra}"
            )
        ordered = tuple(values[name] for name in scheme.names)
        for position, attr in scheme._domain_attributes:
            attr.check_value(ordered[position])
        self._scheme = scheme
        self._values: Tuple[Hashable, ...] = ordered
        self._hash = hash((scheme.name_set, scheme.canonical_pick(ordered)))

    # -- constructors -------------------------------------------------

    @classmethod
    def from_values(cls, scheme: SchemeLike, values: Iterable[Hashable]) -> "RelationTuple":
        """Build a tuple from values listed in the scheme's presentation order."""
        scheme = as_scheme(scheme)
        ordered = tuple(values)
        if len(ordered) != len(scheme):
            raise TupleSchemeMismatch(
                f"expected {len(scheme)} values for scheme {scheme}, got {len(ordered)}"
            )
        for position, attr in scheme._domain_attributes:
            attr.check_value(ordered[position])
        return cls._from_trusted(scheme, ordered)

    @classmethod
    def _from_trusted(
        cls, scheme: RelationScheme, values: Tuple[Hashable, ...]
    ) -> "RelationTuple":
        """Build a tuple without validation (kernel-internal fast path).

        ``scheme`` must already be a :class:`RelationScheme` and ``values``
        a tuple aligned with ``scheme.names``; domain validation is skipped.
        Only algebra operations whose inputs are themselves valid tuples may
        call this — see docs/PERFORMANCE.md for the invariants.
        """
        self = object.__new__(cls)
        self._scheme = scheme
        self._values = values
        self._hash = hash((scheme.name_set, scheme.canonical_pick(values)))
        return self

    # -- mapping protocol ---------------------------------------------

    @property
    def scheme(self) -> RelationScheme:
        """The relation scheme this tuple is defined over."""
        return self._scheme

    def __getitem__(self, key: AttributeLike) -> Hashable:
        name = key.name if isinstance(key, Attribute) else key
        index = self._scheme.index.get(name)
        if index is None:
            raise KeyError(name)
        return self._values[index]

    def __iter__(self) -> Iterator[str]:
        return iter(self._scheme.names)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: object) -> bool:
        name = key.name if isinstance(key, Attribute) else key
        return name in self._scheme

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RelationTuple):
            my_scheme, other_scheme = self._scheme, other._scheme
            if my_scheme is other_scheme or my_scheme.names == other_scheme.names:
                return self._values == other._values
            if my_scheme.name_set != other_scheme.name_set:
                return False
            return my_scheme.canonical_pick(self._values) == other_scheme.canonical_pick(
                other._values
            )
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{n}={v!r}" for n, v in zip(self._scheme.names, self._values)
        )
        return f"RelationTuple({inner})"

    # -- relational operations ----------------------------------------

    def as_dict(self) -> Dict[str, Hashable]:
        """Return a plain mutable dict copy of the tuple."""
        return dict(zip(self._scheme.names, self._values))

    def values_in_order(self, names: Optional[Iterable[str]] = None) -> Tuple[Hashable, ...]:
        """Return values in the order of ``names`` (default: scheme order)."""
        if names is None:
            return self._values
        values = self._values
        index = self._scheme.index
        return tuple(values[index[name]] for name in names)

    def project(self, target: SchemeLike) -> "RelationTuple":
        """Project (restrict) this tuple onto the sub-scheme ``target``.

        This is ``t[Y]`` in the paper's notation.  Raises
        :class:`ProjectionError` if ``target`` is not a subset of the tuple's
        scheme.
        """
        target_scheme = as_scheme(target)
        scheme = self._scheme
        if not target_scheme.is_subscheme_of(scheme):
            missing = sorted(target_scheme.name_set - scheme.name_set)
            raise ProjectionError(
                f"cannot project tuple over {scheme} onto {target_scheme}: "
                f"missing attributes {missing}"
            )
        plan = _project_plan(scheme, target_scheme)
        return RelationTuple._from_trusted(plan.target_scheme, plan.pick(self._values))

    def joins_with(self, other: "RelationTuple") -> bool:
        """Return whether this tuple agrees with ``other`` on common attributes."""
        my_index = self._scheme.index
        other_index = other._scheme.index
        mine = self._values
        theirs = other._values
        for name, position in my_index.items():
            other_position = other_index.get(name)
            if other_position is not None and mine[position] != theirs[other_position]:
                return False
        return True

    def joined(self, other: "RelationTuple") -> "RelationTuple":
        """Return the natural join of two joinable tuples.

        Raises :class:`TupleSchemeMismatch` if the tuples disagree on a common
        attribute.
        """
        if not self.joins_with(other):
            raise TupleSchemeMismatch(
                f"tuples disagree on common attributes: {self!r} vs {other!r}"
            )
        joined_scheme = self._scheme.union(other._scheme)
        other_index = other._scheme.index
        theirs = other._values
        extra = tuple(
            theirs[other_index[name]]
            for name in joined_scheme.names[len(self._values):]
        )
        return RelationTuple._from_trusted(joined_scheme, self._values + extra)

    def extended(self, extra: Mapping[str, Hashable]) -> "RelationTuple":
        """Return a new tuple with additional attribute/value pairs appended."""
        overlapping = set(extra) & set(self._scheme.name_set)
        if overlapping:
            raise TupleSchemeMismatch(
                f"cannot extend tuple with already-present attributes {sorted(overlapping)}"
            )
        new_scheme = self._scheme.union(RelationScheme(extra.keys()))
        appended = tuple(extra[name] for name in new_scheme.names[len(self._values):])
        return RelationTuple._from_trusted(new_scheme, self._values + appended)

    def renamed(self, mapping: Dict[str, str]) -> "RelationTuple":
        """Return a tuple over the renamed scheme with the same values."""
        new_scheme = self._scheme.renamed(mapping)
        return RelationTuple._from_trusted(new_scheme, self._values)


def as_tuple(scheme: SchemeLike, value: Union[RelationTuple, Mapping[str, Hashable], Iterable[Hashable]]) -> RelationTuple:
    """Coerce mappings or value sequences into a :class:`RelationTuple`.

    An existing :class:`RelationTuple` over a differently-*ordered*
    presentation of the same scheme is realigned to ``scheme``'s column order,
    so relations can rely on every stored tuple sharing their positional
    layout (the kernel invariant — see docs/PERFORMANCE.md).
    """
    scheme = as_scheme(scheme)
    if isinstance(value, RelationTuple):
        if value.scheme != scheme:
            raise TupleSchemeMismatch(
                f"tuple over {value.scheme} used where scheme {scheme} expected"
            )
        if value.scheme.names == scheme.names:
            return value
        return RelationTuple._from_trusted(scheme, value.values_in_order(scheme.names))
    if isinstance(value, Mapping):
        return RelationTuple(scheme, value)
    return RelationTuple.from_values(scheme, value)
