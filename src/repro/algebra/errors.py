"""Exceptions raised by the relational-algebra substrate.

The hierarchy is intentionally shallow: everything derives from
:class:`AlgebraError`, so callers that do not care about the precise failure
mode can catch a single type, while the test-suite can assert on the specific
subclasses.
"""

from __future__ import annotations


class AlgebraError(Exception):
    """Base class for every error raised by :mod:`repro.algebra`."""


class SchemeError(AlgebraError):
    """A relation scheme was constructed or used inconsistently."""


class DomainError(AlgebraError):
    """A value was used outside the domain of its attribute."""


class TupleSchemeMismatch(AlgebraError):
    """A tuple was used with a relation or operation over a different scheme."""


class ProjectionError(AlgebraError):
    """A projection referenced attributes not present in the source scheme."""


class JoinError(AlgebraError):
    """A natural join was attempted between incompatible operands."""


class DatabaseSchemeError(AlgebraError):
    """A database does not match its database scheme."""


class RenameError(AlgebraError):
    """An attribute rename was ill-formed (missing source or clashing target)."""


class SelectionError(AlgebraError):
    """A selection predicate referenced attributes outside the scheme."""


class UnionCompatibilityError(AlgebraError):
    """A set operation was applied to relations over different schemes."""
