"""Relation schemes and database schemes.

A *relation scheme* is a finite set of attributes labelling the columns of a
table (paper, Section 2.1).  The paper writes schemes as strings of attributes;
here a :class:`RelationScheme` keeps an explicit attribute order for stable
printing, but equality, hashing, and all algebraic operations treat it as a
set, exactly as the model requires.

A *database scheme* is a finite set of relation schemes, and a database over it
contains exactly one relation per scheme.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple, Union

from ..perf.plancache import make_row_picker
from .attributes import Attribute, as_attribute
from .errors import SchemeError

__all__ = ["RelationScheme", "DatabaseScheme", "as_scheme"]

AttributeLike = Union[str, Attribute]
SchemeLike = Union["RelationScheme", Iterable[AttributeLike], str]


def _identity(row: Tuple) -> Tuple:
    return row


# Per-instance scheme memos are cleared wholesale past this size so a
# long-lived scheme meeting unboundedly many distinct partners cannot leak
# (mirrors the bounded LRU plan caches in repro.perf.plancache).
_MEMO_LIMIT = 512


class RelationScheme:
    """An ordered presentation of a finite set of attributes.

    The order is purely cosmetic (it controls column order when printing a
    relation); two schemes with the same attribute *set* are equal and
    interchangeable everywhere in the library.
    """

    __slots__ = (
        "_attributes",
        "_names",
        "_name_set",
        "_by_name",
        "_index",
        "_canonical_positions",
        "_canonical_pick",
        "_domain_attributes",
        "_fingerprint",
        "_union_memo",
        "_restrict_memo",
        "_subscheme_memo",
    )

    def __init__(self, attributes: Iterable[AttributeLike]):
        attrs = tuple(as_attribute(a) for a in attributes)
        names = tuple(a.name for a in attrs)
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemeError(f"duplicate attributes in scheme: {duplicates}")
        self._attributes: Tuple[Attribute, ...] = attrs
        self._names: Tuple[str, ...] = names
        self._name_set: FrozenSet[str] = frozenset(names)
        self._by_name: Dict[str, Attribute] = {a.name: a for a in attrs}
        # Positional kernel support: O(1) name -> position lookup, plus the
        # permutation that lists positions in sorted-name order so tuples can
        # hash and compare independently of the scheme's presentation order.
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        self._canonical_positions: Tuple[int, ...] = tuple(
            self._index[name] for name in sorted(names)
        )
        if self._canonical_positions == tuple(range(len(names))):
            # Already in sorted-name order: the canonical view is the row itself.
            self._canonical_pick: Callable[[Tuple], Tuple] = _identity
        else:
            self._canonical_pick = make_row_picker(self._canonical_positions)
        # Only attributes with attached domains need value validation; most
        # schemes have none, letting tuple constructors skip the check loop.
        self._domain_attributes: Tuple[Tuple[int, Attribute], ...] = tuple(
            (i, a) for i, a in enumerate(attrs) if a.domain is not None
        )
        # Cache/memo key.  Attribute equality deliberately ignores domains, so
        # keys must include them explicitly or cached plans would hand one
        # scheme's domain metadata to a same-named scheme without it.
        self._fingerprint: Tuple = (names, tuple(a.domain for a in attrs))
        # Memoised scheme algebra.  Union results depend on the partner's
        # attributes *and domains* (its fingerprint); restrict depends only on
        # the wanted names; subscheme tests only on the partner's name set.
        self._union_memo: Dict[Tuple, "RelationScheme"] = {}
        self._restrict_memo: Dict[Tuple[str, ...], "RelationScheme"] = {}
        self._subscheme_memo: Dict[FrozenSet[str], bool] = {}

    # -- constructors -------------------------------------------------

    @classmethod
    def of(cls, *attributes: AttributeLike) -> "RelationScheme":
        """Build a scheme from attribute arguments: ``RelationScheme.of("A", "B")``."""
        return cls(attributes)

    @classmethod
    def from_string(cls, text: str, separator: Optional[str] = None) -> "RelationScheme":
        """Parse a scheme written as a string of attribute names.

        With the default ``separator=None`` the string is split on
        whitespace and commas, e.g. ``"A B C"`` or ``"A, B, C"``.
        """
        if separator is not None:
            parts = [p.strip() for p in text.split(separator)]
        else:
            parts = text.replace(",", " ").split()
        parts = [p for p in parts if p]
        if not parts:
            raise SchemeError(f"cannot parse an empty scheme from {text!r}")
        return cls(parts)

    # -- basic protocol -----------------------------------------------

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The attributes in presentation order."""
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        """The attribute names in presentation order."""
        return self._names

    @property
    def name_set(self) -> FrozenSet[str]:
        """The attribute names as a frozen set (the scheme's identity)."""
        return self._name_set

    @property
    def index(self) -> Dict[str, int]:
        """The cached attribute name -> column position map (do not mutate)."""
        return self._index

    @property
    def canonical_positions(self) -> Tuple[int, ...]:
        """Positions listed in sorted-name order (order-independent identity)."""
        return self._canonical_positions

    @property
    def canonical_pick(self) -> Callable[[Tuple], Tuple]:
        """Compiled picker rearranging a row into sorted-name order."""
        return self._canonical_pick

    @property
    def fingerprint(self) -> Tuple:
        """Hashable identity for plan caches: attribute names plus domains."""
        return self._fingerprint

    def index_of(self, name: str) -> int:
        """Return the column position of ``name`` in presentation order."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemeError(f"attribute {name!r} not in scheme {self}") from None

    def attribute(self, name: str) -> Attribute:
        """Return the attribute object with the given name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemeError(f"attribute {name!r} not in scheme {self}") from None

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, item: AttributeLike) -> bool:
        name = item.name if isinstance(item, Attribute) else item
        return name in self._name_set

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RelationScheme):
            return self._name_set == other._name_set
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._name_set)

    def __repr__(self) -> str:
        return f"RelationScheme({list(self._names)!r})"

    def __str__(self) -> str:
        return " ".join(self._names)

    # -- set algebra ---------------------------------------------------

    def is_subscheme_of(self, other: "SchemeLike") -> bool:
        """Return whether every attribute of this scheme occurs in ``other``."""
        other_names = as_scheme(other).name_set
        memo = self._subscheme_memo
        cached = memo.get(other_names)
        if cached is None:
            if len(memo) >= _MEMO_LIMIT:
                memo.clear()
            cached = memo[other_names] = self._name_set <= other_names
        return cached

    def union(self, other: SchemeLike) -> "RelationScheme":
        """Scheme union, preserving this scheme's order then new attributes."""
        other_scheme = as_scheme(other)
        memo = self._union_memo
        cached = memo.get(other_scheme._fingerprint)
        if cached is not None:
            return cached
        extra = [a for a in other_scheme.attributes if a.name not in self._name_set]
        result = RelationScheme(list(self._attributes) + extra) if extra else self
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        memo[other_scheme._fingerprint] = result
        return result

    def intersection(self, other: SchemeLike) -> "RelationScheme":
        """Scheme intersection, in this scheme's order."""
        other_names = as_scheme(other).name_set
        return RelationScheme(a for a in self._attributes if a.name in other_names)

    def difference(self, other: SchemeLike) -> "RelationScheme":
        """Attributes of this scheme not present in ``other``."""
        other_names = as_scheme(other).name_set
        return RelationScheme(a for a in self._attributes if a.name not in other_names)

    def restrict(self, names: Iterable[AttributeLike]) -> "RelationScheme":
        """Return the sub-scheme containing exactly ``names``, in the given order."""
        wanted = tuple(as_attribute(n).name for n in names)
        memo = self._restrict_memo
        cached = memo.get(wanted)
        if cached is not None:
            return cached
        missing = [n for n in wanted if n not in self._name_set]
        if missing:
            raise SchemeError(f"attributes {missing} not in scheme {self}")
        result = self if wanted == self._names else RelationScheme(
            self._by_name[n] for n in wanted
        )
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        memo[wanted] = result
        return result

    def renamed(self, mapping: Dict[str, str]) -> "RelationScheme":
        """Return a scheme with attributes renamed according to ``mapping``."""
        missing = [old for old in mapping if old not in self._name_set]
        if missing:
            raise SchemeError(f"cannot rename missing attributes {missing} of {self}")
        return RelationScheme(
            a.renamed(mapping[a.name]) if a.name in mapping else a
            for a in self._attributes
        )

    def is_disjoint_from(self, other: SchemeLike) -> bool:
        """Return whether this scheme shares no attribute with ``other``."""
        return self._name_set.isdisjoint(as_scheme(other).name_set)


def as_scheme(value: SchemeLike) -> RelationScheme:
    """Coerce a scheme-like value into a :class:`RelationScheme`.

    Accepts an existing scheme, an iterable of attributes/names, or a string
    of whitespace/comma separated attribute names.
    """
    if isinstance(value, RelationScheme):
        return value
    if isinstance(value, str):
        return RelationScheme.from_string(value)
    return RelationScheme(value)


class DatabaseScheme:
    """A finite set of relation schemes, addressed by relation name."""

    __slots__ = ("_schemes",)

    def __init__(self, schemes: Dict[str, SchemeLike]):
        self._schemes: Dict[str, RelationScheme] = {
            name: as_scheme(s) for name, s in schemes.items()
        }

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """The relation names, in insertion order."""
        return tuple(self._schemes)

    def scheme_of(self, name: str) -> RelationScheme:
        """Return the scheme of the named relation."""
        try:
            return self._schemes[name]
        except KeyError:
            raise SchemeError(f"no relation named {name!r} in database scheme") from None

    def __len__(self) -> int:
        return len(self._schemes)

    def __iter__(self) -> Iterator[Tuple[str, RelationScheme]]:
        return iter(self._schemes.items())

    def __contains__(self, name: str) -> bool:
        return name in self._schemes

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DatabaseScheme):
            return self._schemes == other._schemes
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {s}" for n, s in self._schemes.items())
        return f"DatabaseScheme({{{inner}}})"

    def all_attributes(self) -> RelationScheme:
        """Union of all relation schemes (the universe of attributes)."""
        universe: Sequence[Attribute] = []
        seen = set()
        collected = []
        for scheme in self._schemes.values():
            for attr in scheme:
                if attr.name not in seen:
                    seen.add(attr.name)
                    collected.append(attr)
        universe = collected
        return RelationScheme(universe)
