"""Relational-model substrate: attributes, schemes, tuples, relations, databases.

This subpackage implements the relational model of Section 2.1 of the paper —
relation schemes as finite attribute sets, relations as finite sets of tuples,
and the operations of projection and natural join (plus the remaining
classical operations for completeness).
"""

from .attributes import Attribute, Domain, as_attribute, attribute_names
from .database import Database
from .dependencies import (
    FunctionalDependency,
    JoinDependency,
    chase_lossless_join,
    closure,
    implies_fd,
    project_join_satisfies,
)
from .errors import (
    AlgebraError,
    DatabaseSchemeError,
    DomainError,
    JoinError,
    ProjectionError,
    RenameError,
    SchemeError,
    SelectionError,
    TupleSchemeMismatch,
    UnionCompatibilityError,
)
from .operations import (
    cartesian_product,
    difference,
    divide,
    estimate_join_size,
    greedy_join,
    intersection,
    join_all,
    natural_join,
    project,
    project_join,
    rename,
    select,
    semijoin,
    union,
)
from .reference import naive_natural_join, naive_project, naive_rename
from .relation import Relation
from .schema import DatabaseScheme, RelationScheme, as_scheme
from .tuples import RelationTuple, as_tuple

__all__ = [
    "Attribute",
    "Domain",
    "FunctionalDependency",
    "JoinDependency",
    "closure",
    "implies_fd",
    "chase_lossless_join",
    "project_join_satisfies",
    "as_attribute",
    "attribute_names",
    "Database",
    "DatabaseScheme",
    "RelationScheme",
    "as_scheme",
    "RelationTuple",
    "as_tuple",
    "Relation",
    "project",
    "natural_join",
    "join_all",
    "project_join",
    "select",
    "union",
    "difference",
    "intersection",
    "rename",
    "cartesian_product",
    "semijoin",
    "divide",
    "estimate_join_size",
    "greedy_join",
    "naive_project",
    "naive_natural_join",
    "naive_rename",
    "AlgebraError",
    "SchemeError",
    "DomainError",
    "TupleSchemeMismatch",
    "ProjectionError",
    "JoinError",
    "DatabaseSchemeError",
    "RenameError",
    "SelectionError",
    "UnionCompatibilityError",
]
