"""Databases: named collections of relations over a database scheme.

The paper works with databases that "can be constrained to consist of a single
relation", but the general notion (one relation per relation scheme of a
database scheme) is implemented here so queries over multi-relation databases
are expressible as well.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from .errors import DatabaseSchemeError
from .relation import Relation
from .schema import DatabaseScheme, RelationScheme

__all__ = ["Database"]


class Database(Mapping[str, Relation]):
    """An immutable mapping from relation name to relation.

    A database optionally carries a :class:`DatabaseScheme`; when present,
    the relations are validated against it (exactly one relation per relation
    scheme, with matching schemes).
    """

    __slots__ = ("_relations", "_scheme")

    def __init__(
        self,
        relations: Mapping[str, Relation],
        scheme: Optional[DatabaseScheme] = None,
    ):
        self._relations: Dict[str, Relation] = {
            name: rel if rel.name == name else rel.with_name(name)
            for name, rel in relations.items()
        }
        if scheme is not None:
            self._validate_against(scheme)
        self._scheme = scheme

    def _validate_against(self, scheme: DatabaseScheme) -> None:
        expected = set(scheme.relation_names)
        provided = set(self._relations)
        if expected != provided:
            raise DatabaseSchemeError(
                f"database relations {sorted(provided)} do not match "
                f"database scheme relations {sorted(expected)}"
            )
        for name in expected:
            declared = scheme.scheme_of(name)
            actual = self._relations[name].scheme
            if declared != actual:
                raise DatabaseSchemeError(
                    f"relation {name!r} has scheme {actual}, expected {declared}"
                )

    # -- constructors -------------------------------------------------

    @classmethod
    def single(cls, relation: Relation, name: str = "R") -> "Database":
        """Build a single-relation database, as the paper's reductions use."""
        return cls({name: relation})

    # -- mapping protocol ---------------------------------------------

    @property
    def scheme(self) -> Optional[DatabaseScheme]:
        """The declared database scheme, if any."""
        if self._scheme is not None:
            return self._scheme
        return DatabaseScheme({name: rel.scheme for name, rel in self._relations.items()})

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            # KeyError keeps the Mapping protocol intact (``in``, ``.get()``);
            # callers wanting the library's exception hierarchy can catch
            # LookupError / KeyError alongside AlgebraError.
            raise KeyError(f"no relation named {name!r} in database") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Database):
            return self._relations == other._relations
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}[{len(rel)} tuples]" for name, rel in self._relations.items()
        )
        return f"Database({inner})"

    # -- convenience ---------------------------------------------------

    def relation_schemes(self) -> Dict[str, RelationScheme]:
        """Return the scheme of every relation, keyed by relation name."""
        return {name: rel.scheme for name, rel in self._relations.items()}

    def with_relation(self, name: str, relation: Relation) -> "Database":
        """Return a new database with ``name`` bound to ``relation``."""
        updated = dict(self._relations)
        updated[name] = relation
        return Database(updated)

    def total_tuples(self) -> int:
        """Return the total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def items_sorted(self) -> Tuple[Tuple[str, Relation], ...]:
        """Return (name, relation) pairs sorted by relation name."""
        return tuple(sorted(self._relations.items()))
