"""Relations: finite sets of tuples over a relation scheme.

:class:`Relation` is the central data structure of the substrate.  It is an
immutable set of :class:`~repro.algebra.tuples.RelationTuple` objects, all over
the same scheme, with the relational operations exposed both as methods and as
free functions in :mod:`repro.algebra.operations`.

Internally the relation runs on a *positional kernel*: tuples are stored as a
frozen set of plain value tuples aligned with the scheme's column order, and
``natural_join`` / ``project`` compile a per-scheme-pair plan (integer pick
lists plus the pre-built output scheme, cached in :mod:`repro.perf.plancache`)
whose per-tuple inner loop is pure tuple indexing and set insertion — no
Python-level objects, dicts, or attribute-name lookups.  The rich
:class:`RelationTuple` view of the rows is materialised lazily, only when
something actually iterates the relation, and cached.  The paper's whole
point is that intermediate relations blow up exponentially, so these
per-tuple constant factors dominate every benchmark's wall-clock.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..perf.counters import kernel_counters
from ..perf.plancache import JoinPlan, join_plan_cache
from .errors import (
    JoinError,
    ProjectionError,
    SelectionError,
    TupleSchemeMismatch,
    UnionCompatibilityError,
)
from .schema import RelationScheme, SchemeLike, as_scheme
from .tuples import RelationTuple, _project_plan, as_tuple

__all__ = ["Relation"]

TupleLike = Union[RelationTuple, Mapping[str, Hashable], Iterable[Hashable]]
Row = Tuple[Hashable, ...]

_COUNTERS = kernel_counters()


def _join_plan(left: RelationScheme, right: RelationScheme) -> JoinPlan:
    """Return (compiling on miss) the join plan for an ordered scheme pair.

    The plan fixes the output layout as ``left ++ (right - left)`` — the order
    :meth:`RelationScheme.union` produces — so output values are always the
    left value tuple followed by the picked right extras, regardless of which
    side the hash table is built on.
    """
    cache = join_plan_cache()
    key = (left.fingerprint, right.fingerprint)
    plan = cache.get(key)
    if plan is not None:
        _COUNTERS.join_plan_hits += 1
        return plan
    _COUNTERS.join_plan_misses += 1
    right_names = right.name_set
    common = tuple(name for name in left.names if name in right_names)
    joined_scheme = left.union(right)
    left_index = left.index
    right_index = right.index
    plan = JoinPlan(
        joined_scheme=joined_scheme,
        common_names=common,
        left_key=tuple(left_index[name] for name in common),
        right_key=tuple(right_index[name] for name in common),
        right_extra=tuple(
            right_index[name] for name in joined_scheme.names[len(left.names):]
        ),
    )
    cache.put(key, plan)
    return plan


class Relation:
    """A finite relation over a relation scheme.

    Relations are immutable; every operation returns a new relation.  Tuples
    can be supplied as :class:`RelationTuple` objects, as mappings from
    attribute name to value, or as plain value sequences in scheme order.
    """

    __slots__ = ("_scheme", "_rows", "_name", "_materialized", "_hash", "_stats")

    def __init__(
        self,
        scheme: SchemeLike,
        tuples: Iterable[TupleLike] = (),
        name: Optional[str] = None,
    ):
        self._scheme = as_scheme(scheme)
        # ``as_tuple`` validates and realigns each input to this scheme's
        # column order, so the raw rows all share one positional layout.
        self._rows: FrozenSet[Row] = frozenset(
            as_tuple(self._scheme, t)._values for t in tuples
        )
        self._name = name
        self._materialized: Optional[FrozenSet[RelationTuple]] = None
        self._hash: Optional[int] = None
        self._stats = None

    # -- constructors -------------------------------------------------

    @classmethod
    def empty(cls, scheme: SchemeLike, name: Optional[str] = None) -> "Relation":
        """Return the empty relation over ``scheme``."""
        return cls(scheme, (), name=name)

    @classmethod
    def from_rows(
        cls,
        scheme: SchemeLike,
        rows: Iterable[Sequence[Hashable]],
        name: Optional[str] = None,
    ) -> "Relation":
        """Build a relation from value rows listed in scheme order."""
        scheme = as_scheme(scheme)
        return cls(scheme, (RelationTuple.from_values(scheme, row) for row in rows), name=name)

    @classmethod
    def single(cls, scheme: SchemeLike, values: TupleLike, name: Optional[str] = None) -> "Relation":
        """Build a relation holding a single tuple."""
        return cls(scheme, [values], name=name)

    @classmethod
    def _from_trusted(
        cls,
        scheme: RelationScheme,
        rows: FrozenSet[Row],
        name: Optional[str] = None,
    ) -> "Relation":
        """Wrap an already-validated frozen set of raw value rows.

        Kernel-internal: every row must be a plain value tuple aligned with
        ``scheme``'s column order, with values drawn from already-validated
        tuples — see docs/PERFORMANCE.md for the invariants.
        """
        relation = cls.__new__(cls)
        relation._scheme = scheme
        relation._rows = rows
        relation._name = name
        relation._materialized = None
        relation._hash = None
        relation._stats = None
        return relation

    # -- basic protocol -----------------------------------------------

    @property
    def scheme(self) -> RelationScheme:
        """The relation scheme of this relation."""
        return self._scheme

    @property
    def name(self) -> Optional[str]:
        """An optional display name (used by pretty-printing and databases)."""
        return self._name

    @property
    def tuples(self) -> FrozenSet[RelationTuple]:
        """The rows as a frozen set of :class:`RelationTuple` objects.

        Materialised lazily from the raw positional rows on first access and
        cached; algebra operations never pay for it.
        """
        cached = self._materialized
        if cached is None:
            scheme = self._scheme
            from_trusted = RelationTuple._from_trusted
            cached = frozenset(from_trusted(scheme, row) for row in self._rows)
            self._materialized = cached
        return cached

    @property
    def rows(self) -> FrozenSet[Row]:
        """The raw positional value rows, aligned with ``scheme.names``."""
        return self._rows

    def with_name(self, name: str) -> "Relation":
        """Return the same relation carrying a display name."""
        relation = Relation._from_trusted(self._scheme, self._rows, name)
        relation._materialized = self._materialized
        relation._hash = self._hash
        relation._stats = self._stats
        return relation

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[RelationTuple]:
        return iter(self.tuples)

    def __contains__(self, item: TupleLike) -> bool:
        try:
            candidate = as_tuple(self._scheme, item)
        except TupleSchemeMismatch:
            return False
        return candidate._values in self._rows

    def _aligned_rows(self, other: "Relation") -> FrozenSet[Row]:
        """Return ``other``'s raw rows realigned to this relation's column order.

        Both relations must already have equal schemes (set-wise); when the
        presentation orders also agree this is free.
        """
        if other._scheme.names == self._scheme.names:
            return other._rows
        plan = _project_plan(other._scheme, self._scheme)
        return frozenset(map(plan.pick, other._rows))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Relation):
            if self._scheme != other._scheme:
                return False
            return self._rows == self._aligned_rows(other)
        return NotImplemented

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            # Hash must agree for equal relations over differently-ordered
            # presentations of one scheme, so hash rows in sorted-name order.
            canon = self._scheme.canonical_positions
            if canon == tuple(range(len(canon))):
                canonical_rows = self._rows
            else:
                canonical_rows = frozenset(map(self._scheme.canonical_pick, self._rows))
            cached = hash((self._scheme, canonical_rows))
            self._hash = cached
        return cached

    def __repr__(self) -> str:
        label = self._name or "Relation"
        return f"<{label} over {self._scheme} with {len(self)} tuples>"

    def is_empty(self) -> bool:
        """Return whether the relation has no tuples."""
        return not self._rows

    def cardinality(self) -> int:
        """Return the number of tuples (``|R|`` in the paper)."""
        return len(self._rows)

    def stats(self):
        """The relation's statistics catalog entry, computed lazily and cached.

        Returns a :class:`repro.engine.stats.RelationStats` with the
        cardinality plus per-column distinct counts and min/max bounds.
        Relations are immutable, so the entry is computed at most once —
        every operation returns a fresh relation whose slot starts empty
        (construction *is* invalidation).  The cost-based planner and
        :func:`~repro.algebra.operations.estimate_join_size` read from here.
        """
        cached = self._stats
        if cached is None:
            from ..engine.stats import RelationStats

            cached = self._stats = RelationStats.from_relation(self)
        return cached

    def sorted_rows(self, names: Optional[Sequence[str]] = None) -> List[Row]:
        """Return rows as value tuples, deterministically sorted.

        Homogeneous value rows sort natively; rows mixing incomparable types
        fall back to sorting by per-cell ``repr``.  Useful for printing and
        for comparing relations in tests without depending on set iteration
        order.
        """
        if names is None or tuple(names) == self._scheme.names:
            rows = list(self._rows)
        else:
            index = self._scheme.index
            picks = [index[name] for name in names]
            rows = [tuple(row[i] for i in picks) for row in self._rows]
        try:
            return sorted(rows)
        except TypeError:
            return sorted(rows, key=lambda row: tuple(map(repr, row)))

    def to_table(self, max_rows: Optional[int] = None) -> str:
        """Render the relation as an aligned text table."""
        names = self._scheme.names
        rows = self.sorted_rows()
        if max_rows is not None and len(rows) > max_rows:
            shown = rows[:max_rows]
            truncated = len(rows) - max_rows
        else:
            shown = rows
            truncated = 0
        cells = [[str(n) for n in names]] + [[str(v) for v in row] for row in shown]
        widths = [max(len(row[i]) for row in cells) for i in range(len(names))]
        lines = []
        header = "  ".join(cell.ljust(width) for cell, width in zip(cells[0], widths))
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in cells[1:]:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if truncated:
            lines.append(f"... ({truncated} more tuples)")
        return "\n".join(lines)

    # -- relational algebra -------------------------------------------

    def project(self, target: SchemeLike) -> "Relation":
        """Projection ``π_Y(R)``: restrict every tuple to the attributes in ``target``."""
        target_scheme = as_scheme(target)
        if not target_scheme.is_subscheme_of(self._scheme):
            missing = sorted(target_scheme.name_set - self._scheme.name_set)
            raise ProjectionError(
                f"cannot project relation over {self._scheme} onto {target_scheme}: "
                f"missing attributes {missing}"
            )
        plan = _project_plan(self._scheme, target_scheme)
        out_scheme = plan.target_scheme
        if out_scheme is self._scheme:
            return Relation._from_trusted(self._scheme, self._rows)
        projected = frozenset(map(plan.pick, self._rows))
        _COUNTERS.trusted_tuples_built += len(projected)
        return Relation._from_trusted(out_scheme, projected)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join ``R1 * R2`` via a plan-compiled hash join.

        The result scheme is the union of the operand schemes; a result tuple
        restricts to a tuple of each operand (paper, Section 2.1).  When the
        operand schemes are disjoint this degenerates to a cartesian product.
        The scheme-level work (key positions, output permutation, output
        scheme) comes from the cached :class:`~repro.perf.plancache.JoinPlan`;
        the hash table is built on the smaller operand to bound memory, and
        the inner loop touches only plain value tuples.
        """
        if not isinstance(other, Relation):
            raise JoinError(f"cannot join a relation with {type(other).__name__}")
        plan = _join_plan(self._scheme, other._scheme)
        joined_scheme = plan.joined_scheme
        extra_of = plan.right_extra_of
        left_rows = self._rows
        right_rows = other._rows
        result: set = set()
        add = result.add

        if plan.is_product:
            _COUNTERS.join_probes += len(left_rows)
            extras = [extra_of(right_values) for right_values in right_rows]
            for left_values in left_rows:
                for extra in extras:
                    add(left_values + extra)
        elif len(left_rows) <= len(right_rows):
            # Build on the left operand, probe with the right.
            left_key_of = plan.left_key_of
            buckets: Dict[Hashable, List[Row]] = {}
            for left_values in left_rows:
                key = left_key_of(left_values)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [left_values]
                else:
                    bucket.append(left_values)
            right_key_of = plan.right_key_of
            buckets_get = buckets.get
            _COUNTERS.join_probes += len(right_rows)
            for right_values in right_rows:
                bucket = buckets_get(right_key_of(right_values))
                if bucket is not None:
                    extra = extra_of(right_values)
                    for left_values in bucket:
                        add(left_values + extra)
        else:
            # Build on the right operand (pre-picking its output extras),
            # probe with the left.
            right_key_of = plan.right_key_of
            extra_buckets: Dict[Hashable, List[Row]] = {}
            for right_values in right_rows:
                key = right_key_of(right_values)
                extra = extra_of(right_values)
                bucket = extra_buckets.get(key)
                if bucket is None:
                    extra_buckets[key] = [extra]
                else:
                    bucket.append(extra)
            left_key_of = plan.left_key_of
            extra_buckets_get = extra_buckets.get
            _COUNTERS.join_probes += len(left_rows)
            for left_values in left_rows:
                bucket = extra_buckets_get(left_key_of(left_values))
                if bucket is not None:
                    for extra in bucket:
                        add(left_values + extra)
        _COUNTERS.trusted_tuples_built += len(result)
        return Relation._from_trusted(joined_scheme, frozenset(result))

    def select(self, predicate: Callable[[RelationTuple], bool]) -> "Relation":
        """Selection ``σ_p(R)`` with an arbitrary tuple predicate."""
        try:
            kept = frozenset(t._values for t in self.tuples if predicate(t))
        except KeyError as exc:
            raise SelectionError(f"selection predicate referenced missing attribute {exc}") from exc
        return Relation._from_trusted(self._scheme, kept)

    def select_eq(self, **conditions: Hashable) -> "Relation":
        """Selection on attribute = constant conditions, e.g. ``r.select_eq(S="a")``."""
        missing = [name for name in conditions if name not in self._scheme]
        if missing:
            raise SelectionError(
                f"selection referenced attributes {missing} not in scheme {self._scheme}"
            )
        index = self._scheme.index
        tests = [(index[name], value) for name, value in conditions.items()]
        kept = frozenset(
            row
            for row in self._rows
            if all(row[position] == value for position, value in tests)
        )
        return Relation._from_trusted(self._scheme, kept)

    def _check_compatible(self, other: "Relation", operation: str) -> None:
        if not isinstance(other, Relation):
            raise UnionCompatibilityError(
                f"{operation} requires a relation operand, got {type(other).__name__}"
            )
        if self._scheme != other._scheme:
            raise UnionCompatibilityError(
                f"{operation} requires identical schemes: {self._scheme} vs {other._scheme}"
            )

    def union(self, other: "Relation") -> "Relation":
        """Set union of two relations over the same scheme."""
        self._check_compatible(other, "union")
        return Relation._from_trusted(self._scheme, self._rows | self._aligned_rows(other))

    def difference(self, other: "Relation") -> "Relation":
        """Set difference of two relations over the same scheme."""
        self._check_compatible(other, "difference")
        return Relation._from_trusted(self._scheme, self._rows - self._aligned_rows(other))

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection of two relations over the same scheme."""
        self._check_compatible(other, "intersection")
        return Relation._from_trusted(self._scheme, self._rows & self._aligned_rows(other))

    def rename(self, mapping: Dict[str, str]) -> "Relation":
        """Rename attributes according to ``mapping`` (old name -> new name)."""
        renamed_scheme = self._scheme.renamed(mapping)
        return Relation._from_trusted(renamed_scheme, self._rows)

    def add_constant_column(self, attribute: str, value: Hashable) -> "Relation":
        """Return the relation extended with a constant-valued column."""
        if attribute in self._scheme:
            raise TupleSchemeMismatch(
                f"cannot extend tuple with already-present attributes [{attribute!r}]"
            )
        new_scheme = self._scheme.union(RelationScheme([attribute]))
        extended = frozenset(row + (value,) for row in self._rows)
        return Relation._from_trusted(new_scheme, extended)

    def insert(self, *rows: TupleLike) -> "Relation":
        """Return a new relation with the given tuples added."""
        added = {as_tuple(self._scheme, row)._values for row in rows}
        return Relation._from_trusted(self._scheme, self._rows | added, self._name)

    def remove(self, *rows: TupleLike) -> "Relation":
        """Return a new relation with the given tuples removed (if present)."""
        to_remove = {as_tuple(self._scheme, row)._values for row in rows}
        return Relation._from_trusted(self._scheme, self._rows - to_remove, self._name)

    # -- containment helpers ------------------------------------------

    def is_subset_of(self, other: "Relation") -> bool:
        """Return whether every tuple of this relation occurs in ``other``."""
        self._check_compatible(other, "subset test")
        return self._rows <= self._aligned_rows(other)

    def is_proper_subset_of(self, other: "Relation") -> bool:
        """Return whether this relation is strictly contained in ``other``."""
        self._check_compatible(other, "subset test")
        return self._rows < self._aligned_rows(other)

    def active_domain(self) -> FrozenSet[Hashable]:
        """Return the set of all values occurring anywhere in the relation."""
        values: set = set()
        for row in self._rows:
            values.update(row)
        return frozenset(values)

    def column_values(self, attribute: str) -> FrozenSet[Hashable]:
        """Return the set of values occurring in one column."""
        if attribute not in self._scheme:
            raise ProjectionError(f"attribute {attribute!r} not in scheme {self._scheme}")
        position = self._scheme.index_of(attribute)
        return frozenset(row[position] for row in self._rows)
