"""Relations: finite sets of tuples over a relation scheme.

:class:`Relation` is the central data structure of the substrate.  It is an
immutable set of :class:`~repro.algebra.tuples.RelationTuple` objects, all over
the same scheme, with the relational operations exposed both as methods and as
free functions in :mod:`repro.algebra.operations`.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .errors import (
    JoinError,
    ProjectionError,
    SelectionError,
    TupleSchemeMismatch,
    UnionCompatibilityError,
)
from .schema import RelationScheme, SchemeLike, as_scheme
from .tuples import RelationTuple, as_tuple

__all__ = ["Relation"]

TupleLike = Union[RelationTuple, Mapping[str, Hashable], Iterable[Hashable]]


class Relation:
    """A finite relation over a relation scheme.

    Relations are immutable; every operation returns a new relation.  Tuples
    can be supplied as :class:`RelationTuple` objects, as mappings from
    attribute name to value, or as plain value sequences in scheme order.
    """

    __slots__ = ("_scheme", "_tuples", "_name")

    def __init__(
        self,
        scheme: SchemeLike,
        tuples: Iterable[TupleLike] = (),
        name: Optional[str] = None,
    ):
        self._scheme = as_scheme(scheme)
        self._tuples: FrozenSet[RelationTuple] = frozenset(
            as_tuple(self._scheme, t) for t in tuples
        )
        self._name = name

    # -- constructors -------------------------------------------------

    @classmethod
    def empty(cls, scheme: SchemeLike, name: Optional[str] = None) -> "Relation":
        """Return the empty relation over ``scheme``."""
        return cls(scheme, (), name=name)

    @classmethod
    def from_rows(
        cls,
        scheme: SchemeLike,
        rows: Iterable[Sequence[Hashable]],
        name: Optional[str] = None,
    ) -> "Relation":
        """Build a relation from value rows listed in scheme order."""
        scheme = as_scheme(scheme)
        return cls(scheme, (RelationTuple.from_values(scheme, row) for row in rows), name=name)

    @classmethod
    def single(cls, scheme: SchemeLike, values: TupleLike, name: Optional[str] = None) -> "Relation":
        """Build a relation holding a single tuple."""
        return cls(scheme, [values], name=name)

    # -- basic protocol -----------------------------------------------

    @property
    def scheme(self) -> RelationScheme:
        """The relation scheme of this relation."""
        return self._scheme

    @property
    def name(self) -> Optional[str]:
        """An optional display name (used by pretty-printing and databases)."""
        return self._name

    @property
    def tuples(self) -> FrozenSet[RelationTuple]:
        """The underlying frozen set of tuples."""
        return self._tuples

    def with_name(self, name: str) -> "Relation":
        """Return the same relation carrying a display name."""
        relation = Relation.__new__(Relation)
        relation._scheme = self._scheme
        relation._tuples = self._tuples
        relation._name = name
        return relation

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[RelationTuple]:
        return iter(self._tuples)

    def __contains__(self, item: TupleLike) -> bool:
        try:
            candidate = as_tuple(self._scheme, item)
        except TupleSchemeMismatch:
            return False
        return candidate in self._tuples

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Relation):
            return self._scheme == other._scheme and self._tuples == other._tuples
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._scheme, self._tuples))

    def __repr__(self) -> str:
        label = self._name or "Relation"
        return f"<{label} over {self._scheme} with {len(self)} tuples>"

    def is_empty(self) -> bool:
        """Return whether the relation has no tuples."""
        return not self._tuples

    def cardinality(self) -> int:
        """Return the number of tuples (``|R|`` in the paper)."""
        return len(self._tuples)

    def sorted_rows(self, names: Optional[Sequence[str]] = None) -> List[Tuple[Hashable, ...]]:
        """Return rows as value tuples, deterministically sorted.

        Useful for printing and for comparing relations in tests without
        depending on set iteration order.
        """
        names = tuple(names) if names is not None else self._scheme.names
        rows = [t.values_in_order(names) for t in self._tuples]
        return sorted(rows, key=lambda row: tuple(map(repr, row)))

    def to_table(self, max_rows: Optional[int] = None) -> str:
        """Render the relation as an aligned text table."""
        names = self._scheme.names
        rows = self.sorted_rows()
        if max_rows is not None and len(rows) > max_rows:
            shown = rows[:max_rows]
            truncated = len(rows) - max_rows
        else:
            shown = rows
            truncated = 0
        cells = [[str(n) for n in names]] + [[str(v) for v in row] for row in shown]
        widths = [max(len(row[i]) for row in cells) for i in range(len(names))]
        lines = []
        header = "  ".join(cell.ljust(width) for cell, width in zip(cells[0], widths))
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in cells[1:]:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if truncated:
            lines.append(f"... ({truncated} more tuples)")
        return "\n".join(lines)

    # -- relational algebra -------------------------------------------

    def project(self, target: SchemeLike) -> "Relation":
        """Projection ``π_Y(R)``: restrict every tuple to the attributes in ``target``."""
        target_scheme = as_scheme(target)
        if not target_scheme.is_subscheme_of(self._scheme):
            missing = sorted(target_scheme.name_set - self._scheme.name_set)
            raise ProjectionError(
                f"cannot project relation over {self._scheme} onto {target_scheme}: "
                f"missing attributes {missing}"
            )
        projected_scheme = self._scheme.restrict(target_scheme.names)
        return Relation(projected_scheme, (t.project(projected_scheme) for t in self._tuples))

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join ``R1 * R2`` via a hash join on the common attributes.

        The result scheme is the union of the operand schemes; a result tuple
        restricts to a tuple of each operand (paper, Section 2.1).  When the
        operand schemes are disjoint this degenerates to a cartesian product.
        """
        if not isinstance(other, Relation):
            raise JoinError(f"cannot join a relation with {type(other).__name__}")
        common = tuple(
            name for name in self._scheme.names if name in other._scheme.name_set
        )
        joined_scheme = self._scheme.union(other._scheme)

        # Build the hash table on the smaller operand to bound memory.
        build, probe = (self, other) if len(self) <= len(other) else (other, self)
        buckets: Dict[Tuple[Hashable, ...], List[RelationTuple]] = {}
        for tup in build:
            key = tuple(tup[name] for name in common)
            buckets.setdefault(key, []).append(tup)

        result: List[RelationTuple] = []
        for tup in probe:
            key = tuple(tup[name] for name in common)
            for match in buckets.get(key, ()):
                merged = match.as_dict()
                merged.update(tup.as_dict())
                result.append(RelationTuple(joined_scheme, merged))
        return Relation(joined_scheme, result)

    def select(self, predicate: Callable[[RelationTuple], bool]) -> "Relation":
        """Selection ``σ_p(R)`` with an arbitrary tuple predicate."""
        try:
            kept = [t for t in self._tuples if predicate(t)]
        except KeyError as exc:
            raise SelectionError(f"selection predicate referenced missing attribute {exc}") from exc
        return Relation(self._scheme, kept)

    def select_eq(self, **conditions: Hashable) -> "Relation":
        """Selection on attribute = constant conditions, e.g. ``r.select_eq(S="a")``."""
        missing = [name for name in conditions if name not in self._scheme]
        if missing:
            raise SelectionError(
                f"selection referenced attributes {missing} not in scheme {self._scheme}"
            )
        return self.select(
            lambda t: all(t[name] == value for name, value in conditions.items())
        )

    def _check_compatible(self, other: "Relation", operation: str) -> None:
        if not isinstance(other, Relation):
            raise UnionCompatibilityError(
                f"{operation} requires a relation operand, got {type(other).__name__}"
            )
        if self._scheme != other._scheme:
            raise UnionCompatibilityError(
                f"{operation} requires identical schemes: {self._scheme} vs {other._scheme}"
            )

    def union(self, other: "Relation") -> "Relation":
        """Set union of two relations over the same scheme."""
        self._check_compatible(other, "union")
        return Relation(self._scheme, self._tuples | other._tuples)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference of two relations over the same scheme."""
        self._check_compatible(other, "difference")
        return Relation(self._scheme, self._tuples - other._tuples)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection of two relations over the same scheme."""
        self._check_compatible(other, "intersection")
        return Relation(self._scheme, self._tuples & other._tuples)

    def rename(self, mapping: Dict[str, str]) -> "Relation":
        """Rename attributes according to ``mapping`` (old name -> new name)."""
        renamed_scheme = self._scheme.renamed(mapping)
        return Relation(renamed_scheme, (t.renamed(mapping) for t in self._tuples))

    def add_constant_column(self, attribute: str, value: Hashable) -> "Relation":
        """Return the relation extended with a constant-valued column."""
        new_scheme = self._scheme.union(RelationScheme([attribute]))
        return Relation(new_scheme, (t.extended({attribute: value}) for t in self._tuples))

    def insert(self, *rows: TupleLike) -> "Relation":
        """Return a new relation with the given tuples added."""
        return Relation(self._scheme, list(self._tuples) + list(rows), name=self._name)

    def remove(self, *rows: TupleLike) -> "Relation":
        """Return a new relation with the given tuples removed (if present)."""
        to_remove = {as_tuple(self._scheme, row) for row in rows}
        return Relation(self._scheme, self._tuples - to_remove, name=self._name)

    # -- containment helpers ------------------------------------------

    def is_subset_of(self, other: "Relation") -> bool:
        """Return whether every tuple of this relation occurs in ``other``."""
        self._check_compatible(other, "subset test")
        return self._tuples <= other._tuples

    def is_proper_subset_of(self, other: "Relation") -> bool:
        """Return whether this relation is strictly contained in ``other``."""
        self._check_compatible(other, "subset test")
        return self._tuples < other._tuples

    def active_domain(self) -> FrozenSet[Hashable]:
        """Return the set of all values occurring anywhere in the relation."""
        values: set = set()
        for tup in self._tuples:
            values.update(tup.values_in_order())
        return frozenset(values)

    def column_values(self, attribute: str) -> FrozenSet[Hashable]:
        """Return the set of values occurring in one column."""
        if attribute not in self._scheme:
            raise ProjectionError(f"attribute {attribute!r} not in scheme {self._scheme}")
        return frozenset(t[attribute] for t in self._tuples)
