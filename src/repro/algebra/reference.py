"""Naive reference implementations of the core relational operations.

These functions reimplement ``project``, ``natural_join``, and ``rename``
exactly the way the pre-kernel (seed) code did: dict-based tuple merging,
name-keyed attribute access, and the fully validating
:class:`~repro.algebra.tuples.RelationTuple` constructor for every produced
tuple.  They exist for two reasons:

* the randomized property tests assert that the positional kernel's results
  are set-equal to these references on arbitrary schemes and relations;
* the ``bench_algebra_kernel`` microbenchmark measures the kernel's speedup
  against them, pinning the perf trajectory to a fixed baseline.

They are deliberately slow; do not use them on hot paths.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from .errors import JoinError, ProjectionError
from .relation import Relation
from .schema import SchemeLike, as_scheme
from .tuples import RelationTuple

__all__ = ["naive_project", "naive_natural_join", "naive_rename"]


def naive_project(relation: Relation, target: SchemeLike) -> Relation:
    """Projection via per-tuple dict rebuilds (the seed implementation)."""
    target_scheme = as_scheme(target)
    if not target_scheme.is_subscheme_of(relation.scheme):
        missing = sorted(target_scheme.name_set - relation.scheme.name_set)
        raise ProjectionError(
            f"cannot project relation over {relation.scheme} onto {target_scheme}: "
            f"missing attributes {missing}"
        )
    projected_scheme = relation.scheme.restrict(target_scheme.names)
    return Relation(
        projected_scheme,
        (
            RelationTuple(projected_scheme, {n: t[n] for n in projected_scheme.names})
            for t in relation
        ),
    )


def naive_natural_join(left: Relation, right: Relation) -> Relation:
    """Hash join with dict-merged, fully re-validated tuples (the seed implementation)."""
    if not isinstance(right, Relation):
        raise JoinError(f"cannot join a relation with {type(right).__name__}")
    common = tuple(
        name for name in left.scheme.names if name in right.scheme.name_set
    )
    joined_scheme = left.scheme.union(right.scheme)

    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    buckets: Dict[Tuple[Hashable, ...], List[RelationTuple]] = {}
    for tup in build:
        key = tuple(tup[name] for name in common)
        buckets.setdefault(key, []).append(tup)

    result: List[RelationTuple] = []
    for tup in probe:
        key = tuple(tup[name] for name in common)
        for match in buckets.get(key, ()):
            merged = match.as_dict()
            merged.update(tup.as_dict())
            result.append(RelationTuple(joined_scheme, merged))
    return Relation(joined_scheme, result)


def naive_rename(relation: Relation, mapping: Dict[str, str]) -> Relation:
    """Renaming via per-tuple dict rebuilds (the seed implementation)."""
    renamed_scheme = relation.scheme.renamed(mapping)
    renamed_tuples = []
    for tup in relation:
        values = {}
        for attr in relation.scheme:
            new_name = mapping.get(attr.name, attr.name)
            values[new_name] = tup[attr.name]
        renamed_tuples.append(RelationTuple(renamed_scheme, values))
    return Relation(renamed_scheme, renamed_tuples)
