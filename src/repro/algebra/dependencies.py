"""Functional and join dependencies, and the chase.

The paper's co-NP side result (``*_i π_{Y_i}(R) = R``) is exactly the question
of whether a specific instance satisfies the join dependency ``*[Y_1 ... Y_k]``,
and its hardness discussion leans on Maier–Sagiv–Yannakakis's work on testing
implications of functional and join dependencies.  This module provides that
vocabulary as a first-class part of the algebra substrate:

* :class:`FunctionalDependency` and :class:`JoinDependency` with instance
  satisfaction tests;
* :func:`closure` / :func:`implies_fd` — Armstrong closure of an attribute set
  under a set of FDs, and FD implication;
* :func:`chase_lossless_join` — the classical chase test for whether a
  decomposition is a lossless join under a set of FDs (the tableau chase with
  distinguished/nondistinguished symbols);
* :func:`project_join_satisfies` — the instance-level join-dependency test,
  re-exported in terms of :mod:`repro.decision.fixpoint`'s semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from .operations import project_join
from .relation import Relation
from .schema import RelationScheme, SchemeLike, as_scheme

__all__ = [
    "FunctionalDependency",
    "JoinDependency",
    "closure",
    "implies_fd",
    "chase_lossless_join",
    "project_join_satisfies",
]


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``X -> Y`` over attribute names."""

    determinant: FrozenSet[str]
    dependent: FrozenSet[str]

    @classmethod
    def of(cls, determinant: SchemeLike, dependent: SchemeLike) -> "FunctionalDependency":
        """Build an FD from scheme-like operands: ``FunctionalDependency.of("A B", "C")``."""
        return cls(
            frozenset(as_scheme(determinant).names),
            frozenset(as_scheme(dependent).names),
        )

    def attributes(self) -> FrozenSet[str]:
        """Every attribute mentioned by the dependency."""
        return self.determinant | self.dependent

    def holds_in(self, relation: Relation) -> bool:
        """Instance satisfaction: no two tuples agree on X but differ on Y."""
        witnessed: Dict[Tuple, Tuple] = {}
        determinant = sorted(self.determinant)
        dependent = sorted(self.dependent)
        for tup in relation:
            key = tuple(tup[a] for a in determinant)
            value = tuple(tup[a] for a in dependent)
            if key in witnessed and witnessed[key] != value:
                return False
            witnessed[key] = value
        return True

    def __str__(self) -> str:
        return f"{' '.join(sorted(self.determinant))} -> {' '.join(sorted(self.dependent))}"


@dataclass(frozen=True)
class JoinDependency:
    """A join dependency ``*[Y_1, ..., Y_k]`` over a relation scheme."""

    components: Tuple[RelationScheme, ...]

    @classmethod
    def of(cls, *components: SchemeLike) -> "JoinDependency":
        """Build a join dependency from scheme-like components."""
        return cls(tuple(as_scheme(c) for c in components))

    def scheme(self) -> RelationScheme:
        """The union of the components (the scheme the dependency speaks about)."""
        union = self.components[0]
        for component in self.components[1:]:
            union = union.union(component)
        return union

    def holds_in(self, relation: Relation) -> bool:
        """Instance satisfaction: ``R = *_i π_{Y_i}(R)``.

        This is exactly the co-NP-complete fixpoint question of the paper when
        the components cover the relation's scheme.
        """
        if self.scheme() != relation.scheme:
            return False
        return project_join(relation, self.components) == relation

    def __str__(self) -> str:
        inner = ", ".join(str(component) for component in self.components)
        return f"*[{inner}]"


def closure(attributes: SchemeLike, dependencies: Iterable[FunctionalDependency]) -> FrozenSet[str]:
    """The Armstrong closure ``X+`` of an attribute set under a set of FDs."""
    closed: Set[str] = set(as_scheme(attributes).names)
    dependencies = list(dependencies)
    changed = True
    while changed:
        changed = False
        for dependency in dependencies:
            if dependency.determinant <= closed and not dependency.dependent <= closed:
                closed |= dependency.dependent
                changed = True
    return frozenset(closed)


def implies_fd(
    dependencies: Iterable[FunctionalDependency], candidate: FunctionalDependency
) -> bool:
    """Whether a set of FDs logically implies ``candidate`` (via closure)."""
    return candidate.dependent <= closure(candidate.determinant, dependencies)


def chase_lossless_join(
    scheme: SchemeLike,
    components: Sequence[SchemeLike],
    dependencies: Iterable[FunctionalDependency] = (),
) -> bool:
    """The chase test for lossless-join decompositions.

    Builds the classical tableau with one row per component (distinguished
    symbol ``a_j`` in column ``j`` when the component contains attribute
    ``j``, otherwise a row-specific symbol ``b_{i,j}``), chases it with the
    functional dependencies by equating symbols, and reports whether some row
    becomes all-distinguished — the textbook criterion for the decomposition
    ``R = *_i π_{Y_i}(R)`` holding on every instance satisfying the FDs.

    With an empty dependency set the test succeeds only when some component
    already covers the whole scheme, matching the fact that a proper
    decomposition need not be lossless without constraints (which is the
    paper's point: on a *given* instance the question is co-NP-complete).
    """
    scheme = as_scheme(scheme)
    component_schemes = [as_scheme(c) for c in components]
    attributes = list(scheme.names)

    # symbol: ("a", attribute) distinguished, ("b", row, attribute) otherwise.
    tableau: List[Dict[str, Tuple]] = []
    for row_index, component in enumerate(component_schemes):
        row: Dict[str, Tuple] = {}
        for attribute in attributes:
            if attribute in component:
                row[attribute] = ("a", attribute)
            else:
                row[attribute] = ("b", row_index, attribute)
        tableau.append(row)

    dependencies = list(dependencies)
    changed = True
    while changed:
        changed = False
        for dependency in dependencies:
            determinant = sorted(dependency.determinant & set(attributes))
            dependent = sorted(dependency.dependent & set(attributes))
            if not determinant or not dependent:
                continue
            for first_index in range(len(tableau)):
                for second_index in range(first_index + 1, len(tableau)):
                    first, second = tableau[first_index], tableau[second_index]
                    if all(first[a] == second[a] for a in determinant):
                        for attribute in dependent:
                            if first[attribute] == second[attribute]:
                                continue
                            # Prefer the distinguished symbol; otherwise pick
                            # the first row's symbol.  Equate globally.
                            preferred = first[attribute]
                            other = second[attribute]
                            if other[0] == "a":
                                preferred, other = other, preferred
                            for row in tableau:
                                for name in attributes:
                                    if row[name] == other:
                                        row[name] = preferred
                            changed = True

    return any(
        all(row[attribute] == ("a", attribute) for attribute in attributes)
        for row in tableau
    )


def project_join_satisfies(relation: Relation, components: Sequence[SchemeLike]) -> bool:
    """Instance-level join-dependency satisfaction (``R = *_i π_{Y_i}(R)``)."""
    return JoinDependency.of(*components).holds_in(relation)
